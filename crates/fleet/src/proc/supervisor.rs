//! The supervisor side: own a shard child process, keep it alive, and
//! keep the grid's telemetry stream exactly as if the shard ran
//! in-thread.
//!
//! [`run_shard`] is the whole contract: hand it a [`ShardSpec`] and a
//! [`ProcConfig`] and it returns the same [`FleetRun`] the in-thread
//! path would have produced, no matter how many times the child died
//! on the way there. The machinery underneath:
//!
//! * **Liveness deadlines.** A dedicated reader thread decodes frames
//!   off the child's stdout; the supervisor waits on a channel with a
//!   per-frame timeout ([`ProcConfig::liveness`]). A shard that stops
//!   framing within its budget is declared dead and killed — hangs and
//!   crashes land in the same restart path.
//! * **Restart with bounded exponential backoff.** A dead or hung
//!   child is re-spawned up to [`ProcConfig::max_restarts`] times,
//!   sleeping `backoff_base_ms << (attempt - 1)` between attempts.
//!   Chaos injection and per-shard extra argv are stripped on restart:
//!   a chaos kill fires once.
//! * **Deduplicated replay.** Because a [`ShardSpec`] is deterministic,
//!   a restarted child reproduces the identical frame stream; the
//!   supervisor drops the first `n` batch frames it has already
//!   forwarded and resumes mid-stream. The grid's observers see every
//!   tick exactly once.
//! * **Graceful degradation.** If the child cannot be spawned, or the
//!   restart budget is exhausted, the shard falls back to in-thread
//!   execution in the supervisor's own thread — degraded, recorded as
//!   such in the [`ProcShardLedger`], but never silently lossy.
//!
//! A [`ShardFrame::Fatal`] is the one non-retried outcome: the child
//! is reporting a deterministic scheduling error that an identical
//! respawn would hit identically, so the supervisor fails loudly.

use super::frame::{write_msg, FrameError, FrameReader};
use super::protocol::{ChaosSpec, ShardFrame, ShardSpec};
use crate::batch::EventLog;
use crate::descriptor::FleetError;
use crate::obs::trace::{SpanKind, TraceSink};
use crate::scheduler::{FleetRun, Scheduler};
use crate::telemetry::{Observer, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::Duration;

/// How to launch and babysit shard child processes.
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// The child executable.
    pub program: std::path::PathBuf,
    /// Arguments every child gets (e.g. `["--child"]`).
    pub args: Vec<String>,
    /// Extra arguments for specific shards, appended after `args` on
    /// the **first** attempt only (restart strips them — this is where
    /// a `--chaos-exec 3` flag rides).
    pub shard_args: Vec<(usize, Vec<String>)>,
    /// Environment variables set on every child.
    pub envs: Vec<(String, String)>,
    /// Supervisor-injected chaos, per shard, first attempt only.
    pub chaos: Vec<(usize, ChaosSpec)>,
    /// Per-frame liveness deadline: a child that writes nothing for
    /// this long is declared hung and killed.
    pub liveness: Duration,
    /// Restarts allowed after the first attempt dies or hangs.
    pub max_restarts: u32,
    /// Backoff before restart `n` is `backoff_base_ms << (n - 1)`.
    pub backoff_base_ms: u64,
}

impl ProcConfig {
    /// A config launching `program` with no arguments and the default
    /// policy: 10 s liveness, 2 restarts, 50 ms base backoff.
    pub fn new(program: impl Into<std::path::PathBuf>) -> Self {
        Self {
            program: program.into(),
            args: Vec::new(),
            shard_args: Vec::new(),
            envs: Vec::new(),
            chaos: Vec::new(),
            liveness: Duration::from_secs(10),
            max_restarts: 2,
            backoff_base_ms: 50,
        }
    }

    /// A config re-executing the current binary — the usual shape for
    /// tests and single-binary experiments.
    ///
    /// # Errors
    ///
    /// Fails if the current executable path cannot be resolved.
    pub fn current_exe() -> Result<Self, FleetError> {
        let exe = std::env::current_exe()
            .map_err(|e| FleetError::new(format!("resolving current executable: {e}")))?;
        Ok(Self::new(exe))
    }

    /// Appends an argument passed to every child.
    #[must_use]
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Appends first-attempt-only extra arguments for one shard.
    #[must_use]
    pub fn shard_args<I, S>(mut self, shard: usize, args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.shard_args
            .push((shard, args.into_iter().map(Into::into).collect()));
        self
    }

    /// Sets an environment variable on every child.
    #[must_use]
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Injects chaos into one shard's spec, first attempt only.
    #[must_use]
    pub fn chaos(mut self, shard: usize, spec: ChaosSpec) -> Self {
        self.chaos.push((shard, spec));
        self
    }

    /// Sets the per-frame liveness deadline.
    #[must_use]
    pub fn liveness(mut self, deadline: Duration) -> Self {
        self.liveness = deadline;
        self
    }

    /// Sets the restart budget.
    #[must_use]
    pub fn max_restarts(mut self, restarts: u32) -> Self {
        self.max_restarts = restarts;
        self
    }

    /// Sets the base backoff in milliseconds.
    #[must_use]
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = ms;
        self
    }

    fn chaos_for(&self, shard: usize) -> Option<ChaosSpec> {
        self.chaos
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, c)| *c)
    }

    fn extra_args_for(&self, shard: usize) -> &[String] {
        self.shard_args
            .iter()
            .find(|(s, _)| *s == shard)
            .map_or(&[], |(_, a)| a.as_slice())
    }

    /// The backoff slept before restart number `restart` (1-based).
    fn backoff_ms(&self, restart: u32) -> u64 {
        self.backoff_base_ms
            .saturating_mul(1_u64.wrapping_shl(restart.saturating_sub(1)))
    }
}

/// How one child attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcOutcome {
    /// The child streamed its ledger and exited.
    Completed,
    /// The stream ended (or broke) without a terminal frame — the
    /// child died mid-run.
    Died {
        /// Batch frames this attempt delivered before dying.
        after_frames: u32,
    },
    /// The child stopped framing for longer than the liveness deadline
    /// and was killed.
    TimedOut {
        /// Batch frames this attempt delivered before hanging.
        after_frames: u32,
    },
    /// The child process could not be spawned at all.
    SpawnFailed,
}

/// One child attempt, as recorded in the shard's process ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcAttempt {
    /// 1-based attempt number.
    pub attempt: u32,
    /// How the attempt ended.
    pub outcome: ProcOutcome,
    /// Backoff slept *after* this attempt, if it was retried. This is
    /// the configured value, so the ledger stays deterministic.
    pub backoff_ms: Option<u64>,
}

/// The supervisor's ledger for one shard: every attempt, every
/// restart, and whether the shard ultimately degraded to in-thread
/// execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcShardLedger {
    /// The shard index.
    pub shard: usize,
    /// Every attempt, in order.
    pub attempts: Vec<ProcAttempt>,
    /// Restarts performed (attempts beyond the first).
    pub restarts: u32,
    /// Whether the shard fell back to in-thread execution.
    pub degraded_in_thread: bool,
    /// Batch frames forwarded to the grid's observers, exactly once
    /// each.
    pub frames_forwarded: u64,
    /// Duplicate batch frames dropped during restart replays.
    pub deduped_frames: u64,
}

/// The supervisor's ledger for a whole grid of child shards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcGridLedger {
    /// One ledger per shard, in shard order.
    pub shards: Vec<ProcShardLedger>,
}

impl ProcGridLedger {
    /// Total restarts across the grid.
    #[must_use]
    pub fn total_restarts(&self) -> u32 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Whether any shard degraded to in-thread execution.
    #[must_use]
    pub fn any_degraded(&self) -> bool {
        self.shards.iter().any(|s| s.degraded_in_thread)
    }
}

/// How one supervised attempt ended, internally. The ledger is boxed:
/// it carries the whole beam record vector, dwarfing the other arms.
enum AttemptEnd {
    Ledger(Box<super::protocol::ShardLedger>),
    Fatal(String),
    Died { after_frames: u32 },
    TimedOut { after_frames: u32 },
}

/// Runs one shard as a supervised child process, forwarding each batch
/// to `forward` exactly once, and returns the reconstructed
/// [`FleetRun`] plus the supervision ledger.
///
/// The returned run is frame-for-frame identical to what the in-thread
/// path produces from the same spec (modulo wall-clock fields like
/// per-device `max_queue_depth`, which only the child observes).
///
/// # Errors
///
/// Returns a [`FleetError`] if the child reports a deterministic
/// scheduling error ([`ShardFrame::Fatal`]), or if the in-thread
/// degradation path itself fails.
pub fn run_shard(
    spec: &ShardSpec,
    config: &ProcConfig,
    forward: &mut dyn Observer,
) -> Result<(FleetRun, ProcShardLedger), FleetError> {
    run_shard_traced(spec, config, forward, None)
}

/// [`run_shard`] with a tracing sink: the supervisor records its own
/// wall-clock spans (`frame_decode`, `liveness_wait`,
/// `restart_backoff`), sets [`super::child::TRACE_ENV`] on the child
/// so it records its phase spans too, and injects the child's
/// [`ShardFrame::Trace`] sidecars into the sink — one timeline across
/// parent and re-exec'd children. Trace frames never count toward
/// frame dedupe or liveness-progress accounting, so the run's ledgers
/// are byte-identical to an untraced [`run_shard`].
///
/// # Errors
///
/// As [`run_shard`].
pub fn run_shard_traced(
    spec: &ShardSpec,
    config: &ProcConfig,
    forward: &mut dyn Observer,
    trace: Option<&TraceSink>,
) -> Result<(FleetRun, ProcShardLedger), FleetError> {
    let mut ledger = ProcShardLedger {
        shard: spec.shard,
        attempts: Vec::new(),
        restarts: 0,
        degraded_in_thread: false,
        frames_forwarded: 0,
        deduped_frames: 0,
    };
    // The grid-visible log, reconstructed batch by batch across
    // attempts. Because the child's dispatcher hands its observer
    // exactly the batches it folds into its own log, this rebuilds the
    // child's `FleetRun::log` identically.
    let mut log = EventLog::new();

    let max_attempts = config.max_restarts.saturating_add(1);
    for attempt in 1..=max_attempts {
        // Chaos and per-shard argv ride the first attempt only: the
        // whole point of a restart is to re-run the spec *without* the
        // self-inflicted kill.
        let first = attempt == 1;
        let mut attempt_spec = spec.clone();
        attempt_spec.chaos = if first {
            attempt_spec.chaos.or_else(|| config.chaos_for(spec.shard))
        } else {
            None
        };

        let mut command = Command::new(&config.program);
        command.args(&config.args);
        if first {
            command.args(config.extra_args_for(spec.shard));
        }
        for (key, value) in &config.envs {
            command.env(key, value);
        }
        if trace.is_some() {
            // Ask the child for span sidecars; the spec wire format
            // stays untouched, so traced and untraced supervisors
            // speak the identical protocol.
            command.env(super::child::TRACE_ENV, "1");
        }
        command
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());

        let child = match command.spawn() {
            Ok(child) => child,
            Err(_) => {
                // No executable, no fork budget, whatever: degrade to
                // in-thread right away rather than burning the restart
                // budget on an environment that cannot spawn.
                ledger.attempts.push(ProcAttempt {
                    attempt,
                    outcome: ProcOutcome::SpawnFailed,
                    backoff_ms: None,
                });
                return degrade_in_thread(spec, forward, ledger, trace);
            }
        };

        match supervise_attempt(
            child,
            &attempt_spec,
            config,
            forward,
            &mut ledger,
            &mut log,
            trace,
        ) {
            Ok(AttemptEnd::Ledger(shard_ledger)) => {
                ledger.attempts.push(ProcAttempt {
                    attempt,
                    outcome: ProcOutcome::Completed,
                    backoff_ms: None,
                });
                let run = FleetRun {
                    report: shard_ledger.report,
                    records: shard_ledger.records,
                    log: std::mem::take(&mut log),
                };
                return Ok((run, ledger));
            }
            Ok(AttemptEnd::Fatal(why)) => {
                // Deterministic failure: restart would reproduce it.
                ledger.attempts.push(ProcAttempt {
                    attempt,
                    outcome: ProcOutcome::Completed,
                    backoff_ms: None,
                });
                return Err(FleetError::new(format!(
                    "shard {} child reported a fatal error: {why}",
                    spec.shard
                )));
            }
            Ok(AttemptEnd::Died { after_frames }) => {
                record_retry(
                    &mut ledger,
                    config,
                    attempt,
                    max_attempts,
                    ProcOutcome::Died { after_frames },
                    trace,
                    spec.shard,
                );
            }
            Ok(AttemptEnd::TimedOut { after_frames }) => {
                record_retry(
                    &mut ledger,
                    config,
                    attempt,
                    max_attempts,
                    ProcOutcome::TimedOut { after_frames },
                    trace,
                    spec.shard,
                );
            }
            Err(e) => return Err(e),
        }
    }

    // Restart budget exhausted: the show goes on in-thread.
    degrade_in_thread(spec, forward, ledger, trace)
}

/// Records a failed attempt and sleeps its backoff if a retry follows.
fn record_retry(
    ledger: &mut ProcShardLedger,
    config: &ProcConfig,
    attempt: u32,
    max_attempts: u32,
    outcome: ProcOutcome,
    trace: Option<&TraceSink>,
    shard: usize,
) {
    let will_retry = attempt < max_attempts;
    let backoff_ms = will_retry.then(|| config.backoff_ms(attempt));
    ledger.attempts.push(ProcAttempt {
        attempt,
        outcome,
        backoff_ms,
    });
    if let Some(ms) = backoff_ms {
        ledger.restarts += 1;
        let span =
            trace.map(|t| t.start(SpanKind::RestartBackoff, Some(shard), u64::from(attempt)));
        std::thread::sleep(Duration::from_millis(ms));
        drop(span);
    }
}

/// Supervises one spawned child to its end: writes the spec, decodes
/// frames under the liveness deadline, forwards fresh batches, dedupes
/// replayed ones.
#[allow(clippy::too_many_arguments)]
fn supervise_attempt(
    mut child: Child,
    spec: &ShardSpec,
    config: &ProcConfig,
    forward: &mut dyn Observer,
    ledger: &mut ProcShardLedger,
    log: &mut EventLog,
    trace: Option<&TraceSink>,
) -> Result<AttemptEnd, FleetError> {
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| FleetError::new("child stdout was not piped"))?;
    let mut stdin = child
        .stdin
        .take()
        .ok_or_else(|| FleetError::new("child stdin was not piped"))?;

    // The child reads its whole spec before framing anything, so
    // writing first cannot deadlock; if the child died on arrival the
    // write fails and the attempt ends as a death below.
    let spec_sent = write_msg(&mut stdin, spec).is_ok();
    drop(stdin);

    // A dedicated reader thread turns the blocking pipe into a channel
    // the supervisor can wait on with a deadline.
    let (tx, rx) = mpsc::channel::<Result<ShardFrame, FrameError>>();
    let reader_trace = trace.cloned();
    let reader_shard = spec.shard;
    let reader = std::thread::spawn(move || {
        let mut frames = FrameReader::new(stdout);
        let mut ordinal: u64 = 0;
        loop {
            // `frame_decode` covers the whole pull: waiting on the
            // pipe plus decoding the frame off it.
            let span = reader_trace
                .as_ref()
                .map(|t| t.start(SpanKind::FrameDecode, Some(reader_shard), ordinal));
            let next = frames.read_msg::<ShardFrame>();
            drop(span);
            ordinal += 1;
            match next {
                Ok(Some(frame)) => {
                    // Only a ledger or a fatal closes the conversation;
                    // batches and trace sidecars keep it open.
                    let terminal = matches!(frame, ShardFrame::Ledger(_) | ShardFrame::Fatal(_));
                    if tx.send(Ok(frame)).is_err() || terminal {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        }
    });

    // Frames already replayed to the grid in earlier attempts: the
    // deterministic prefix to drop before forwarding resumes.
    let already_forwarded = ledger.frames_forwarded;
    let mut seen: u64 = 0;
    let end = loop {
        if !spec_sent && seen == 0 {
            // The pipe rejected the spec: the child is already gone.
            break AttemptEnd::Died { after_frames: 0 };
        }
        let wait_span = trace.map(|t| t.start(SpanKind::LivenessWait, Some(spec.shard), seen));
        let received = rx.recv_timeout(config.liveness);
        drop(wait_span);
        match received {
            Ok(Ok(ShardFrame::Batch(batch))) => {
                if batch.validate().is_err() {
                    // A malformed batch from a live pipe is corruption,
                    // not determinism — treat it as a death and let the
                    // restart path take over.
                    break AttemptEnd::Died {
                        after_frames: clamp_frames(seen),
                    };
                }
                seen += 1;
                if seen <= already_forwarded {
                    // Replay of a batch an earlier attempt already
                    // forwarded: drop it.
                    ledger.deduped_frames += 1;
                } else {
                    forward.observe_batch(&batch);
                    log.push_batch(batch);
                    ledger.frames_forwarded += 1;
                }
            }
            Ok(Ok(ShardFrame::Trace(spans))) => {
                // The child's own spans, merged onto the parent's
                // timeline. Deliberately outside every other ledger
                // line: a trace frame moves no dedupe counter and no
                // frame total, so traced and untraced supervision
                // account identically.
                if let Some(sink) = trace {
                    for span in spans {
                        sink.record(span);
                    }
                }
            }
            Ok(Ok(ShardFrame::Ledger(shard_ledger))) => {
                break AttemptEnd::Ledger(Box::new(shard_ledger))
            }
            Ok(Ok(ShardFrame::Fatal(why))) => break AttemptEnd::Fatal(why),
            Ok(Err(_)) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Broken frame or stream end without a terminal frame:
                // the child crashed.
                break AttemptEnd::Died {
                    after_frames: clamp_frames(seen),
                };
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                break AttemptEnd::TimedOut {
                    after_frames: clamp_frames(seen),
                };
            }
        }
    };

    // Whatever happened, the child does not outlive its attempt.
    let _ = child.kill();
    let _ = child.wait();
    let _ = reader.join();
    Ok(end)
}

fn clamp_frames(seen: u64) -> u32 {
    u32::try_from(seen).unwrap_or(u32::MAX)
}

/// Runs the shard in-thread (the degradation path), skipping the
/// batches earlier child attempts already forwarded.
fn degrade_in_thread(
    spec: &ShardSpec,
    forward: &mut dyn Observer,
    mut ledger: ProcShardLedger,
    trace: Option<&TraceSink>,
) -> Result<(FleetRun, ProcShardLedger), FleetError> {
    ledger.degraded_in_thread = true;
    let mut dedup = DedupForward {
        inner: forward,
        skip: ledger.frames_forwarded,
        seen: 0,
        deduped: 0,
        forwarded: 0,
    };
    let mut session = Scheduler::session(&spec.fleet)
        .config(spec.config.clone())
        .load(&spec.load)
        .faults(&spec.plan);
    if let Some(ceilings) = spec.ceilings.as_deref() {
        session = session.admission_ceilings(ceilings);
    }
    if let Some(sink) = trace {
        session = session.trace(sink).trace_shard(spec.shard);
    }
    // The in-thread run's own log is complete and authoritative, so
    // the partially reconstructed one is dropped.
    let run = session.run_with(&mut dedup)?;
    ledger.deduped_frames += dedup.deduped;
    ledger.frames_forwarded += dedup.forwarded;
    Ok((run, ledger))
}

/// An observer adapter that drops the first `skip` batches (already
/// forwarded by dead child attempts) and forwards the rest.
struct DedupForward<'a> {
    inner: &'a mut dyn Observer,
    skip: u64,
    seen: u64,
    deduped: u64,
    forwarded: u64,
}

impl Observer for DedupForward<'_> {
    fn observe(&mut self, event: &TelemetryEvent) {
        self.inner.observe(event);
    }

    fn observe_batch(&mut self, batch: &crate::batch::TickBatch) {
        self.seen += 1;
        if self.seen <= self.skip {
            self.deduped += 1;
            return;
        }
        self.forwarded += 1;
        self.inner.observe_batch(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_per_restart() {
        let config = ProcConfig::new("true").backoff_base_ms(50);
        assert_eq!(config.backoff_ms(1), 50);
        assert_eq!(config.backoff_ms(2), 100);
        assert_eq!(config.backoff_ms(3), 200);
    }

    #[test]
    fn builders_compose() {
        let config = ProcConfig::new("shard-bin")
            .arg("--child")
            .shard_args(0, ["--chaos-exec", "3"])
            .env("RUST_LOG", "warn")
            .chaos(
                1,
                ChaosSpec {
                    kill_after_frames: 2,
                },
            )
            .liveness(Duration::from_secs(3))
            .max_restarts(5)
            .backoff_base_ms(10);
        assert_eq!(config.args, vec!["--child"]);
        assert_eq!(config.extra_args_for(0), ["--chaos-exec", "3"]);
        assert!(config.extra_args_for(1).is_empty());
        assert_eq!(
            config.chaos_for(1),
            Some(ChaosSpec {
                kill_after_frames: 2
            })
        );
        assert_eq!(config.chaos_for(0), None);
        assert_eq!(config.liveness, Duration::from_secs(3));
        assert_eq!(config.max_restarts, 5);
    }

    #[test]
    fn spawn_failure_degrades_to_in_thread() {
        use crate::admission::GridAdmission;
        use crate::descriptor::ResolvedFleet;
        use crate::fault::FaultPlan;
        use crate::scheduler::SchedulerConfig;
        use crate::shard::{partition, GridFaultPlan, RebalancePolicy};
        use crate::survey::SurveyLoad;
        use crate::telemetry::NullObserver;

        let shards = vec![
            ResolvedFleet::synthetic(300, &[0.1, 0.1]),
            ResolvedFleet::synthetic(300, &[0.1]),
        ];
        let load = SurveyLoad::custom(300, 5, 2);
        let part = partition(
            &load,
            &shards,
            RebalancePolicy::default(),
            &GridFaultPlan::none(),
            GridAdmission::default(),
            &SchedulerConfig::default(),
        );
        let spec = ShardSpec {
            shard: 0,
            fleet: shards[0].clone(),
            load: part.shard_loads[0].clone(),
            plan: FaultPlan::none(),
            config: SchedulerConfig::default(),
            ceilings: None,
            chaos: None,
        };
        let config = ProcConfig::new("/nonexistent/shard-binary-for-test");
        let (run, ledger) = run_shard(&spec, &config, &mut NullObserver).unwrap();
        assert!(ledger.degraded_in_thread);
        assert_eq!(ledger.attempts.len(), 1);
        assert_eq!(ledger.attempts[0].outcome, ProcOutcome::SpawnFailed);
        assert_eq!(ledger.restarts, 0);

        let reference = Scheduler::session(&spec.fleet)
            .load(&spec.load)
            .run()
            .unwrap();
        assert_eq!(run.records, reference.records);
        assert_eq!(run.log, reference.log);
    }
}
