//! The child side of the shard protocol: run one shard, frame the
//! stream.
//!
//! A shard child is any process that calls [`serve_stdio`] (the
//! cluster experiment's `--child` mode, the integration tests'
//! re-exec'd helper): it reads one [`ShardSpec`] frame from stdin,
//! runs the shard with a plain in-process [`crate::Scheduler`] session,
//! writes each dispatcher tick's [`TickBatch`] to stdout as a
//! [`ShardFrame::Batch`], and finishes with a [`ShardFrame::Ledger`]
//! (or [`ShardFrame::Fatal`] for a deterministic scheduling error).
//!
//! Chaos injection lives here too: if the effective [`ChaosSpec`] says
//! `kill_after_frames: n`, the child SIGKILLs itself immediately after
//! its `n`-th batch frame reaches the pipe — a real `kill -9`, not a
//! simulated flap, which is exactly what makes the supervisor's
//! restart path crash-real. The spec's own `chaos` field wins; a
//! `--chaos-exec`-style override from the child's argv comes second;
//! the `DEDISP_CHAOS_EXEC` environment variable (for harnesses that
//! cannot pass custom flags) last.

use super::frame::{write_msg, FrameError, FrameReader};
use super::protocol::{ChaosSpec, ShardFrame, ShardLedger, ShardSpec};
use crate::batch::TickBatch;
use crate::descriptor::FleetError;
use crate::obs::trace::TraceSink;
use crate::scheduler::Scheduler;
use crate::telemetry::{Observer, TelemetryEvent};
use std::io::Write;

/// Environment variable carrying a `kill_after_frames` chaos count for
/// child entry points that cannot receive custom CLI flags (e.g. a
/// libtest-managed helper test).
pub const CHAOS_ENV: &str = "DEDISP_CHAOS_EXEC";

/// Environment variable the supervisor sets to ask a child to record
/// its own phase spans and ship them upstream as
/// [`ShardFrame::Trace`] sidecar frames. Any non-empty value other
/// than `0` enables tracing. An env var rather than a spec field so
/// the [`ShardSpec`] wire format stays unchanged.
pub const TRACE_ENV: &str = "DEDISP_TRACE";

/// SIGKILLs the current process — the real thing, via `kill -9`.
/// Aborts as a fallback if the signal somehow fails to land, so a
/// chaos child never limps onward half-dead.
fn sigkill_self() -> ! {
    let pid = std::process::id().to_string();
    let _ = std::process::Command::new("kill")
        .arg("-9")
        .arg(&pid)
        .status();
    std::process::abort();
}

/// The child's observer: frames each tick batch onto `out` the moment
/// the dispatcher flushes it, and fires the chaos kill when its frame
/// budget is spent.
struct Framing<W: Write> {
    out: W,
    /// Batch frames written so far.
    frames: u32,
    chaos: Option<ChaosSpec>,
    /// Stray per-event telemetry (none on the grid shard path today,
    /// but the [`Observer`] seam allows it) collects here and flushes
    /// as its own batch frame before the next tick batch.
    pending: TickBatch,
    /// First write failure; later writes are skipped so the run still
    /// terminates and the child can exit loudly.
    error: Option<FrameError>,
    /// The child's own span sink, drained into [`ShardFrame::Trace`]
    /// sidecars after each batch frame (tracing runs only).
    trace: Option<TraceSink>,
}

impl<W: Write> Framing<W> {
    fn send(&mut self, frame: &ShardFrame) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = write_msg(&mut self.out, frame) {
            self.error = Some(e);
            return;
        }
        // Only batch frames count toward the chaos budget: a trace
        // sidecar never perturbs where the kill lands, so a traced
        // chaos run dies after the same telemetry as an untraced one.
        if matches!(frame, ShardFrame::Batch(_)) {
            self.frames += 1;
            if let Some(chaos) = self.chaos {
                if self.frames >= chaos.kill_after_frames {
                    sigkill_self();
                }
            }
        }
    }

    fn flush_pending(&mut self) {
        if !self.pending.is_empty() {
            let batch = std::mem::take(&mut self.pending);
            self.send(&ShardFrame::Batch(batch));
        }
    }

    /// Ships the spans buffered since the last flush as one sidecar
    /// frame (no frame when there is nothing to say).
    fn flush_trace(&mut self) {
        if let Some(sink) = self.trace.clone() {
            let spans = sink.drain();
            if !spans.is_empty() {
                self.send(&ShardFrame::Trace(spans));
            }
        }
    }
}

impl<W: Write> Observer for Framing<W> {
    fn observe(&mut self, event: &TelemetryEvent) {
        self.pending.push(event);
    }

    fn observe_batch(&mut self, batch: &TickBatch) {
        self.flush_pending();
        self.send(&ShardFrame::Batch(batch.clone()));
        self.flush_trace();
    }
}

/// Runs one shard conversation over explicit streams: reads the spec
/// from `input`, streams frames to `output`. `chaos_override` is the
/// argv-level chaos source (e.g. a parsed `--chaos-exec n`).
///
/// # Errors
///
/// Returns a [`FleetError`] if the spec cannot be read, the run fails
/// (after a `Fatal` frame is written), or the pipe broke mid-stream.
pub fn serve(
    input: impl std::io::Read,
    output: impl Write,
    chaos_override: Option<ChaosSpec>,
) -> Result<(), FleetError> {
    serve_traced(input, output, chaos_override, trace_from_env())
}

/// [`serve`] with tracing decided explicitly instead of from
/// [`TRACE_ENV`]: when `traced`, the shard session records its phase
/// spans and ships them upstream as [`ShardFrame::Trace`] sidecars.
///
/// # Errors
///
/// As [`serve`].
pub fn serve_traced(
    input: impl std::io::Read,
    output: impl Write,
    chaos_override: Option<ChaosSpec>,
    traced: bool,
) -> Result<(), FleetError> {
    let mut reader = FrameReader::new(input);
    let spec: ShardSpec = reader
        .read_msg()
        .map_err(|e| FleetError::new(format!("reading shard spec: {e}")))?
        .ok_or_else(|| FleetError::new("stream ended before a shard spec arrived"))?;
    let chaos = spec.chaos.or(chaos_override).or_else(chaos_from_env);
    let trace = traced.then(TraceSink::default);

    let mut framing = Framing {
        out: output,
        frames: 0,
        chaos,
        pending: TickBatch::new(),
        error: None,
        trace: trace.clone(),
    };
    let mut session = Scheduler::session(&spec.fleet)
        .config(spec.config.clone())
        .load(&spec.load)
        .faults(&spec.plan);
    if let Some(ceilings) = spec.ceilings.as_deref() {
        session = session.admission_ceilings(ceilings);
    }
    if let Some(sink) = &trace {
        session = session.trace(sink).trace_shard(spec.shard);
    }
    match session.run_with(&mut framing) {
        Ok(run) => {
            framing.flush_pending();
            // The last tick's flush-phase spans land after its batch
            // frame went out; ship them before the ledger closes the
            // conversation.
            framing.flush_trace();
            framing.send(&ShardFrame::Ledger(ShardLedger {
                report: run.report,
                records: run.records,
            }));
        }
        Err(e) => {
            // A deterministic scheduling error: tell the supervisor
            // not to bother restarting.
            framing.send(&ShardFrame::Fatal(e.to_string()));
            return Err(e);
        }
    }
    match framing.error {
        Some(e) => Err(FleetError::new(format!("writing shard frames: {e}"))),
        None => Ok(()),
    }
}

/// Runs one shard conversation over this process's stdin/stdout — the
/// child entry point. `chaos_override` carries an argv-parsed chaos
/// count ([`CHAOS_ENV`] is consulted as the last resort).
///
/// # Errors
///
/// As [`serve`].
pub fn serve_stdio(chaos_override: Option<ChaosSpec>) -> Result<(), FleetError> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve(stdin.lock(), stdout.lock(), chaos_override)
}

/// Parses [`CHAOS_ENV`] into a chaos spec, if set and well-formed.
fn chaos_from_env() -> Option<ChaosSpec> {
    let raw = std::env::var(CHAOS_ENV).ok()?;
    raw.trim()
        .parse::<u32>()
        .ok()
        .map(|kill_after_frames| ChaosSpec { kill_after_frames })
}

/// Whether [`TRACE_ENV`] asks for span sidecars.
fn trace_from_env() -> bool {
    std::env::var(TRACE_ENV).is_ok_and(|v| {
        let v = v.trim();
        !v.is_empty() && v != "0"
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::GridAdmission;
    use crate::descriptor::ResolvedFleet;
    use crate::fault::FaultPlan;
    use crate::scheduler::SchedulerConfig;
    use crate::shard::{partition, GridFaultPlan, RebalancePolicy};
    use crate::survey::SurveyLoad;

    fn spec_for_test() -> ShardSpec {
        let shards = vec![
            ResolvedFleet::synthetic(500, &[0.1, 0.1]),
            ResolvedFleet::synthetic(500, &[0.1, 0.1]),
        ];
        let load = SurveyLoad::custom(500, 6, 3);
        let part = partition(
            &load,
            &shards,
            RebalancePolicy::default(),
            &GridFaultPlan::none(),
            GridAdmission::default(),
            &SchedulerConfig::default(),
        );
        ShardSpec {
            shard: 0,
            fleet: shards[0].clone(),
            load: part.shard_loads[0].clone(),
            plan: FaultPlan::none(),
            config: SchedulerConfig::default(),
            ceilings: None,
            chaos: None,
        }
    }

    #[test]
    fn serve_streams_the_in_thread_run_exactly() {
        let spec = spec_for_test();
        let mut request = Vec::new();
        write_msg(&mut request, &spec).unwrap();
        let mut response = Vec::new();
        serve(request.as_slice(), &mut response, None).unwrap();

        // Decode the conversation: batches, then exactly one ledger.
        let mut reader = FrameReader::new(response.as_slice());
        let mut batches = Vec::new();
        let mut ledger = None;
        while let Some(frame) = reader.read_msg::<ShardFrame>().unwrap() {
            match frame {
                ShardFrame::Batch(b) => {
                    assert!(ledger.is_none(), "batches precede the ledger");
                    b.validate().unwrap();
                    batches.push(b);
                }
                ShardFrame::Ledger(l) => {
                    assert!(ledger.replace(l).is_none(), "exactly one ledger");
                }
                ShardFrame::Fatal(why) => panic!("unexpected fatal: {why}"),
                ShardFrame::Trace(spans) => {
                    panic!("untraced serve shipped {} spans", spans.len())
                }
            }
        }
        let ledger = ledger.expect("conversation ends with a ledger");

        // The conversation carries exactly what the same in-thread
        // session produces: same report, same records, same stream.
        let reference = Scheduler::session(&spec.fleet)
            .config(spec.config.clone())
            .load(&spec.load)
            .faults(&spec.plan)
            .run()
            .unwrap();
        let normalize = |mut r: crate::metrics::FleetReport| {
            for d in &mut r.devices {
                d.max_queue_depth = 0;
            }
            r
        };
        assert_eq!(normalize(ledger.report), normalize(reference.report));
        assert_eq!(ledger.records, reference.records);
        let mut log = crate::batch::EventLog::new();
        for batch in batches {
            log.push_batch(batch);
        }
        assert_eq!(log, reference.log);
    }

    #[test]
    fn traced_serve_ships_sidecars_and_an_identical_ledger() {
        let spec = spec_for_test();
        let mut request = Vec::new();
        write_msg(&mut request, &spec).unwrap();

        let mut plain = Vec::new();
        serve_traced(request.as_slice(), &mut plain, None, false).unwrap();
        let mut traced = Vec::new();
        serve_traced(request.as_slice(), &mut traced, None, true).unwrap();

        // Stripping the sidecars from the traced conversation leaves
        // exactly the untraced conversation: same batches, same
        // ledger, byte for byte once re-framed.
        let strip = |bytes: &[u8]| {
            let mut reader = FrameReader::new(bytes);
            let mut kept = Vec::new();
            let mut spans = Vec::new();
            while let Some(frame) = reader.read_msg::<ShardFrame>().unwrap() {
                match frame {
                    ShardFrame::Trace(s) => spans.extend(s),
                    other => write_msg(&mut kept, &other).unwrap(),
                }
            }
            (kept, spans)
        };
        let (plain_frames, plain_spans) = strip(&plain);
        let (traced_frames, traced_spans) = strip(&traced);
        assert_eq!(plain_frames, traced_frames);
        assert!(plain_spans.is_empty());
        assert!(!traced_spans.is_empty(), "a traced run ships spans");
        assert!(
            traced_spans.iter().all(|s| s.shard == Some(spec.shard)),
            "child spans carry the shard tag"
        );
    }

    #[test]
    fn a_bad_spec_yields_a_fatal_frame_and_an_error() {
        let mut spec = spec_for_test();
        spec.plan = FaultPlan::none().with_flap(0, 2.0, 1.0); // empty window
        let mut request = Vec::new();
        write_msg(&mut request, &spec).unwrap();
        let mut response = Vec::new();
        assert!(serve(request.as_slice(), &mut response, None).is_err());
        let mut reader = FrameReader::new(response.as_slice());
        match reader.read_msg::<ShardFrame>().unwrap() {
            Some(ShardFrame::Fatal(why)) => assert!(!why.is_empty()),
            other => panic!("expected a fatal frame, got {other:?}"),
        }
    }

    #[test]
    fn a_missing_spec_is_a_loud_error() {
        let mut out = Vec::new();
        assert!(serve(&b""[..], &mut out, None).is_err());
        assert!(out.is_empty());
    }
}
