//! The typed messages of the shard wire protocol.
//!
//! One conversation per child process, strictly alternating roles:
//!
//! 1. supervisor → child: one [`ShardSpec`] frame (everything the
//!    shard needs to run deterministically);
//! 2. child → supervisor: zero or more [`ShardFrame::Batch`] frames,
//!    one per dispatcher tick boundary — the same [`TickBatch`] blocks
//!    an in-thread shard hands its observer;
//! 3. child → supervisor: exactly one terminal frame —
//!    [`ShardFrame::Ledger`] on success, [`ShardFrame::Fatal`] for a
//!    deterministic scheduling error the supervisor must not retry.
//!
//! A stream that ends without a terminal frame *is* the crash signal:
//! the supervisor treats it as a dead shard and applies its
//! restart/backoff policy. Determinism is what makes that sound — a
//! restarted shard re-runs the identical spec and reproduces the
//! identical frame sequence, so already-forwarded batches are simply
//! skipped (see [`super::supervisor`]).

use crate::batch::TickBatch;
use crate::descriptor::ResolvedFleet;
use crate::fault::FaultPlan;
use crate::metrics::{BeamRecord, FleetReport};
use crate::obs::trace::Span;
use crate::scheduler::SchedulerConfig;
use crate::shard::ShardLoad;
use serde::{Deserialize, Serialize};

/// A deterministic crash injection for the child: after writing its
/// `kill_after_frames`-th batch frame, the child SIGKILLs itself —
/// `kill -9`, no unwinding, no goodbye frame. This is how the cluster
/// experiment makes "a shard actually died" reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosSpec {
    /// Batch frames to write before the self-inflicted `kill -9`.
    pub kill_after_frames: u32,
}

/// Everything a child process needs to run one shard: the spec frame
/// the supervisor sends first.
///
/// The spec is self-contained and deterministic by construction — the
/// same spec always produces the same frame stream — which is the
/// foundation the supervisor's restart-and-dedupe machinery stands on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardSpec {
    /// The shard's index in the grid (for labeling and ledgers).
    pub shard: usize,
    /// The shard's resolved fleet.
    pub fleet: ResolvedFleet,
    /// The shard's slice of the survey, as partitioned by the grid
    /// front-end (beam re-homing already applied).
    pub load: ShardLoad,
    /// The shard's device-level fault schedule.
    pub plan: FaultPlan,
    /// Scheduler tunables, identical across the grid.
    pub config: SchedulerConfig,
    /// Per-tick admission ceilings from a coordinated grid controller.
    pub ceilings: Option<Vec<usize>>,
    /// Crash injection, if this run is a chaos experiment. Stripped by
    /// the supervisor on restart — a chaos kill fires once.
    pub chaos: Option<ChaosSpec>,
}

/// The final ledger a child reports: the shard's own aggregated report
/// plus the terminal outcome of every beam it owned (shard-local
/// identities; the supervisor re-keys through the same
/// [`crate::GlobalBeam`] tables the in-thread path uses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardLedger {
    /// The shard's aggregated, serializable report.
    pub report: FleetReport,
    /// Terminal state of every admitted beam, in job-index order.
    pub records: Vec<BeamRecord>,
}

/// One child → supervisor frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ShardFrame {
    /// One dispatcher tick's telemetry, in the columnar encoding.
    Batch(TickBatch),
    /// The successful terminal frame.
    Ledger(ShardLedger),
    /// A deterministic scheduling error: retrying the identical spec
    /// would fail identically, so the supervisor fails loudly instead.
    Fatal(String),
    /// A sidecar of the child's own wall-clock phase spans (see
    /// [`crate::obs::trace`]), sent only when the supervisor asked
    /// for tracing. Pure instrumentation, outside the conversation
    /// proper: never counted toward frame dedupe, chaos kill counts,
    /// or liveness progress accounting — a supervisor may drop every
    /// `Trace` frame and the run's ledgers do not change.
    Trace(Vec<Span>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::frame::{write_msg, FrameReader};
    use crate::telemetry::TelemetryEvent;

    #[test]
    fn protocol_messages_round_trip_through_frames() {
        let mut batch = TickBatch::new();
        batch.push(&TelemetryEvent::Probe {
            device: 1,
            at: 0.5,
            up: true,
        });
        let frames = vec![
            ShardFrame::Batch(batch),
            ShardFrame::Trace(vec![crate::obs::trace::Span {
                kind: crate::obs::trace::SpanKind::Admit,
                shard: Some(3),
                tick: 7,
                start_ns: 123,
                dur_ns: 456,
            }]),
            ShardFrame::Fatal("no load".to_string()),
        ];
        let mut buf = Vec::new();
        for frame in &frames {
            write_msg(&mut buf, frame).unwrap();
        }
        let mut reader = FrameReader::new(buf.as_slice());
        let mut back = Vec::new();
        while let Some(frame) = reader.read_msg::<ShardFrame>().unwrap() {
            back.push(frame);
        }
        assert_eq!(back, frames);
    }

    #[test]
    fn spec_round_trips_with_and_without_chaos() {
        use crate::admission::GridAdmission;
        use crate::shard::{partition, GridFaultPlan, RebalancePolicy};
        use crate::survey::SurveyLoad;
        let shards = vec![
            ResolvedFleet::synthetic(100, &[0.2, 0.4]),
            ResolvedFleet::synthetic(100, &[0.2]),
        ];
        let load = SurveyLoad::custom(100, 4, 2);
        let part = partition(
            &load,
            &shards,
            RebalancePolicy::default(),
            &GridFaultPlan::none(),
            GridAdmission::default(),
            &SchedulerConfig::default(),
        );
        let spec = ShardSpec {
            shard: 0,
            fleet: shards[0].clone(),
            load: part.shard_loads[0].clone(),
            plan: FaultPlan::none().with_kill(1, 1.5),
            config: SchedulerConfig::default(),
            ceilings: Some(vec![100, 75]),
            chaos: Some(ChaosSpec {
                kill_after_frames: 2,
            }),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ShardSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.shard, spec.shard);
        assert_eq!(back.fleet, spec.fleet);
        assert_eq!(back.load, spec.load);
        assert_eq!(back.plan, spec.plan);
        assert_eq!(back.ceilings, spec.ceilings);
        assert_eq!(back.chaos, spec.chaos);
    }
}
