//! Shards as supervised child processes.
//!
//! Everything the grid needs to run a shard *outside* its own address
//! space, without the rest of the system noticing:
//!
//! * [`frame`] — the length-prefixed, checksummed framing layer that
//!   carries JSON messages over a pipe and fails loudly (never
//!   silently, never by panicking) on truncation or corruption;
//! * [`protocol`] — the typed conversation: one [`ShardSpec`] in, a
//!   stream of [`ShardFrame::Batch`] telemetry out, one terminal
//!   [`ShardFrame::Ledger`] (or [`ShardFrame::Fatal`]);
//! * [`child`] — the child entry point ([`serve_stdio`]) plus the
//!   chaos self-kill that makes crash testing *real* (`kill -9`, not a
//!   simulated flap);
//! * [`supervisor`] — process ownership: per-frame liveness deadlines,
//!   bounded restart with exponential backoff, deterministic
//!   frame-replay dedupe, and graceful degradation to in-thread
//!   execution.
//!
//! The seam the rest of the crate sees is
//! [`crate::grid::ShardBackend`]: `InThread` keeps every existing
//! code path byte-identical, `Process` swaps each shard's scoped
//! thread for a supervised child without changing a single ledger.

pub mod child;
pub mod frame;
pub mod protocol;
pub mod supervisor;

pub use child::{serve, serve_stdio, serve_traced, CHAOS_ENV, TRACE_ENV};
pub use frame::{write_frame, write_msg, FrameError, FrameReader};
pub use protocol::{ChaosSpec, ShardFrame, ShardLedger, ShardSpec};
pub use supervisor::{
    run_shard, run_shard_traced, ProcAttempt, ProcConfig, ProcGridLedger, ProcOutcome,
    ProcShardLedger,
};
