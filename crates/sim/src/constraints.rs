//! "Meaningful configuration" checks (paper, Section IV-A).
//!
//! The auto-tuner executes the algorithm "for every meaningful
//! combination of the four parameters", where meaningful means the
//! configuration "fulfills all the constraints posed by a specific
//! platform, setup and input instance". This module is that filter.

use dedisp_core::KernelConfig;
use serde::{Deserialize, Serialize};

use crate::device::DeviceDescriptor;
use crate::workload::Workload;

/// Baseline registers every work-item needs regardless of configuration:
/// buffer pointers, loop counters, and index arithmetic.
pub const REG_BASE: u32 = 12;

/// Why a configuration is not meaningful on a (device, workload) pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigViolation {
    /// More work-items per work-group than the runtime accepts.
    WorkGroupTooLarge {
        /// Requested work-items.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// One work-group needs more wavefront slots than a compute unit has.
    TooManyWaves {
        /// Wavefronts the work-group occupies.
        requested: u32,
        /// Device limit per compute unit.
        limit: u32,
    },
    /// A single work-item exceeds the per-thread register ceiling.
    TooManyRegisters {
        /// Registers the work-item needs.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// A single work-group exceeds the compute unit's register file.
    RegisterFileOverflow {
        /// Registers the work-group needs.
        requested: u64,
        /// Register file size.
        limit: u32,
    },
    /// The tile's staging buffer exceeds local memory.
    LocalMemoryOverflow {
        /// Bytes the staging buffer needs.
        requested: u64,
        /// Local memory size.
        limit: u32,
    },
    /// The tile exceeds the problem in the time or DM dimension, so part
    /// of the work-group would be idle by construction.
    TileExceedsProblem {
        /// Human-readable dimension description.
        dimension: &'static str,
    },
}

impl std::fmt::Display for ConfigViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigViolation::WorkGroupTooLarge { requested, limit } => {
                write!(f, "work-group of {requested} exceeds limit {limit}")
            }
            ConfigViolation::TooManyWaves { requested, limit } => {
                write!(f, "work-group occupies {requested} waves, limit {limit}")
            }
            ConfigViolation::TooManyRegisters { requested, limit } => {
                write!(f, "work-item needs {requested} registers, limit {limit}")
            }
            ConfigViolation::RegisterFileOverflow { requested, limit } => {
                write!(
                    f,
                    "work-group needs {requested} registers, file holds {limit}"
                )
            }
            ConfigViolation::LocalMemoryOverflow { requested, limit } => {
                write!(
                    f,
                    "staging needs {requested} B of local memory, limit {limit}"
                )
            }
            ConfigViolation::TileExceedsProblem { dimension } => {
                write!(f, "tile exceeds problem in the {dimension} dimension")
            }
        }
    }
}

/// Registers one work-item of `config` uses: the base cost plus one
/// accumulator per computed element plus per-DM delay bookkeeping. This
/// is the model behind the paper's Figures 4–5 "registers per work-item".
pub fn registers_per_item(config: &KernelConfig) -> u32 {
    REG_BASE + config.registers_per_item() + 2 * config.el_dm()
}

/// Bytes of local memory one work-group of `config` needs on `workload`:
/// the widest per-channel staging span across the tile's trials. A
/// single-trial tile needs no staging (work-items read through cache).
pub fn local_bytes(config: &KernelConfig, workload: &Workload) -> u64 {
    let tile_dm = config.tile_dm() as f64;
    if config.tile_dm() <= 1 {
        return 0;
    }
    let tile_time = config.tile_time() as f64;
    let worst = workload.max_gradient() * (tile_dm - 1.0);
    // Staging never exceeds the union of the trials' windows: disjoint
    // windows are loaded as separate segments, tile_time each.
    let span = tile_time + worst.min(tile_time * (tile_dm - 1.0));
    (span * 4.0).ceil() as u64
}

/// Checks whether `config` is meaningful for `device` and `workload`.
///
/// # Errors
///
/// Returns the first violated constraint.
pub fn check_config(
    device: &DeviceDescriptor,
    workload: &Workload,
    config: &KernelConfig,
) -> Result<(), ConfigViolation> {
    let wi = config.work_items();
    if wi > device.max_wg_size {
        return Err(ConfigViolation::WorkGroupTooLarge {
            requested: wi,
            limit: device.max_wg_size,
        });
    }
    let waves = wi.div_ceil(device.simd_width);
    if waves > device.max_waves_per_cu {
        return Err(ConfigViolation::TooManyWaves {
            requested: waves,
            limit: device.max_waves_per_cu,
        });
    }
    let regs = registers_per_item(config);
    if regs > device.max_regs_per_item {
        return Err(ConfigViolation::TooManyRegisters {
            requested: regs,
            limit: device.max_regs_per_item,
        });
    }
    let wg_regs = u64::from(regs) * u64::from(wi);
    if wg_regs > u64::from(device.regfile_per_cu) {
        return Err(ConfigViolation::RegisterFileOverflow {
            requested: wg_regs,
            limit: device.regfile_per_cu,
        });
    }
    let lmem = local_bytes(config, workload);
    if lmem > u64::from(device.max_local_per_wg) {
        return Err(ConfigViolation::LocalMemoryOverflow {
            requested: lmem,
            limit: device.max_local_per_wg,
        });
    }
    if config.tile_time() as usize > workload.out_samples {
        return Err(ConfigViolation::TileExceedsProblem { dimension: "time" });
    }
    if config.tile_dm() as usize > workload.trials {
        return Err(ConfigViolation::TileExceedsProblem { dimension: "DM" });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{amd_hd7970, intel_xeon_phi_5110p, nvidia_gtx680, nvidia_k20};
    use dedisp_core::{DmGrid, FrequencyBand};

    fn apertif_workload(trials: usize) -> Workload {
        Workload::analytic(
            "Apertif",
            &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            20_000,
        )
        .unwrap()
    }

    fn lofar_workload(trials: usize) -> Workload {
        Workload::analytic(
            "LOFAR",
            &FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            200_000,
        )
        .unwrap()
    }

    #[test]
    fn register_model() {
        let c = KernelConfig::new(8, 4, 5, 2).unwrap();
        assert_eq!(registers_per_item(&c), REG_BASE + 10 + 4);
    }

    #[test]
    fn single_trial_tile_needs_no_local_memory() {
        let w = lofar_workload(64);
        let c = KernelConfig::new(256, 1, 4, 1).unwrap();
        assert_eq!(local_bytes(&c, &w), 0);
    }

    #[test]
    fn staging_grows_with_dm_tile_but_caps_at_union() {
        let w = lofar_workload(64);
        let narrow = KernelConfig::new(64, 2, 1, 1).unwrap(); // tile 64 x 2
        let wide = KernelConfig::new(64, 2, 1, 4).unwrap(); // tile 64 x 8
        assert!(local_bytes(&wide, &w) > local_bytes(&narrow, &w));
        // LOFAR's gradient (≈890 samples/trial at the lowest channel) far
        // exceeds a 64-sample tile: staging is capped at the disjoint
        // union (D × tile_time), never the raw span.
        let d = 8u64;
        let union_cap = 64 * d * 4;
        assert_eq!(local_bytes(&wide, &w), union_cap);
    }

    #[test]
    fn hd7970_rejects_large_work_groups() {
        let dev = amd_hd7970();
        let w = apertif_workload(256);
        let c = KernelConfig::new(32, 16, 1, 1).unwrap(); // 512 work-items
        assert!(matches!(
            check_config(&dev, &w, &c),
            Err(ConfigViolation::WorkGroupTooLarge { limit: 256, .. })
        ));
        let ok = KernelConfig::new(32, 8, 1, 1).unwrap();
        assert!(check_config(&dev, &w, &ok).is_ok());
    }

    #[test]
    fn gk104_register_ceiling_bites() {
        let dev = nvidia_gtx680();
        let w = apertif_workload(256);
        // 25×4 accumulators need well over 63 registers.
        let heavy = KernelConfig::new(16, 8, 25, 4).unwrap();
        assert!(matches!(
            check_config(&dev, &w, &heavy),
            Err(ConfigViolation::TooManyRegisters { .. })
        ));
        // The same shape is fine on GK110 (K20, 255 registers).
        assert!(check_config(&nvidia_k20(), &w, &heavy).is_ok());
    }

    #[test]
    fn register_file_limits_big_groups_of_heavy_items() {
        let dev = nvidia_k20();
        let w = apertif_workload(4096);
        // 1024 items × (12 + 100 + 8) regs = 122,880 > 65,536.
        let c = KernelConfig::new(256, 4, 25, 4).unwrap();
        assert!(matches!(
            check_config(&dev, &w, &c),
            Err(ConfigViolation::RegisterFileOverflow { .. })
        ));
    }

    #[test]
    fn phi_wave_slots_cap_work_group_size() {
        let dev = intel_xeon_phi_5110p();
        let w = apertif_workload(256);
        // 4 hyperthreads × 16-wide vectors: at most 64 work-items/group.
        let c = KernelConfig::new(128, 1, 1, 1).unwrap();
        assert!(matches!(
            check_config(&dev, &w, &c),
            Err(ConfigViolation::TooManyWaves { .. })
        ));
        let ok = KernelConfig::new(16, 1, 4, 1).unwrap();
        assert!(check_config(&dev, &w, &ok).is_ok());
    }

    #[test]
    fn tile_must_fit_problem() {
        let dev = amd_hd7970();
        let w = apertif_workload(4);
        let c = KernelConfig::new(16, 8, 1, 1).unwrap(); // DM tile 8 > 4
        assert!(matches!(
            check_config(&dev, &w, &c),
            Err(ConfigViolation::TileExceedsProblem { dimension: "DM" })
        ));
    }

    #[test]
    fn violations_render() {
        let dev = amd_hd7970();
        let w = apertif_workload(4);
        let c = KernelConfig::new(16, 8, 1, 1).unwrap();
        let msg = check_config(&dev, &w, &c).unwrap_err().to_string();
        assert!(msg.contains("DM"));
    }
}
