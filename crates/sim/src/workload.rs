//! Workload summaries: what the cost model needs to know about one
//! dedispersion problem instance.
//!
//! A workload is a *(setup, input instance)* pair reduced to the numbers
//! the model consumes: problem dimensions, useful flop, and — crucially —
//! the per-channel delay gradient (extra input samples a tile must span
//! per additional trial DM), which encodes the data-reuse available in
//! the observational setup.

use dedisp_core::delay::delay_seconds;
use dedisp_core::{DedispersionPlan, DmGrid, FrequencyBand, Result};
use serde::{Deserialize, Serialize};

/// A dedispersion problem instance as seen by the cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Setup name, for reports.
    pub name: String,
    /// Frequency channels (`c`).
    pub channels: usize,
    /// Output samples per trial (`s`, one second of data).
    pub out_samples: usize,
    /// Trial DMs (`d`, the input instance).
    pub trials: usize,
    /// Per-channel delay gradient in samples per trial step. All zeros in
    /// the perfect-reuse (0-DM) scenario of Section IV-C.
    pub gradient: Vec<f64>,
    /// Useful flop of the instance (`d·s·c`).
    pub useful_flop: u64,
    /// Minimum sustained GFLOP/s for real-time operation.
    pub realtime_gflops: f64,
}

impl Workload {
    /// Derives a workload from a fully-built plan (exact, including the
    /// delay table's sample rounding).
    pub fn from_plan(name: impl Into<String>, plan: &DedispersionPlan) -> Self {
        Self {
            name: name.into(),
            channels: plan.channels(),
            out_samples: plan.out_samples(),
            trials: plan.trials(),
            gradient: plan.delays().gradient_samples_per_trial(),
            useful_flop: plan.flop(),
            realtime_gflops: plan.realtime_gflops(),
        }
    }

    /// Builds a workload analytically from band/grid/rate — no delay
    /// table allocation, so sweeping thousands of instances is free. The
    /// gradient of a linear DM grid is exact: Eq. 1 is linear in DM.
    ///
    /// # Errors
    ///
    /// Forwards parameter validation errors.
    pub fn analytic(
        name: impl Into<String>,
        band: &FrequencyBand,
        grid: &DmGrid,
        sample_rate: u32,
    ) -> Result<Self> {
        let f_ref = band.high_mhz();
        let gradient = band
            .channel_frequencies()
            .map(|f| delay_seconds(grid.step(), f, f_ref) * f64::from(sample_rate))
            .collect();
        let channels = band.channels();
        let out_samples = sample_rate as usize;
        let trials = grid.count();
        let useful_flop = trials as u64 * out_samples as u64 * channels as u64;
        Ok(Self {
            name: name.into(),
            channels,
            out_samples,
            trials,
            gradient,
            useful_flop,
            realtime_gflops: useful_flop as f64 / 1e9,
        })
    }

    /// The same instance with every delay gradient zeroed — the paper's
    /// third experiment: all trial DMs equal 0, exposing perfect reuse.
    pub fn zero_dm(&self) -> Self {
        Self {
            name: format!("{}-0dm", self.name),
            gradient: vec![0.0; self.channels],
            ..self.clone()
        }
    }

    /// Mean delay gradient across channels, a scalar summary of how
    /// hostile the setup is to data-reuse.
    pub fn mean_gradient(&self) -> f64 {
        if self.gradient.is_empty() {
            return 0.0;
        }
        self.gradient.iter().sum::<f64>() / self.gradient.len() as f64
    }

    /// Largest per-channel gradient (the lowest frequency channel).
    pub fn max_gradient(&self) -> f64 {
        self.gradient.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apertif_band() -> FrequencyBand {
        FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap()
    }

    fn lofar_band() -> FrequencyBand {
        FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap()
    }

    #[test]
    fn analytic_matches_plan_gradient() {
        let band = FrequencyBand::new(140.0, 0.5, 32).unwrap();
        let grid = DmGrid::paper_grid(64).unwrap();
        let plan = DedispersionPlan::builder()
            .band(band)
            .dm_grid(grid)
            .sample_rate(10_000)
            .build()
            .unwrap();
        let exact = Workload::from_plan("w", &plan);
        let approx = Workload::analytic("w", &band, &grid, 10_000).unwrap();
        assert_eq!(exact.channels, approx.channels);
        assert_eq!(exact.trials, approx.trials);
        assert_eq!(exact.useful_flop, approx.useful_flop);
        for ch in 0..32 {
            let a = exact.gradient[ch];
            let b = approx.gradient[ch];
            // Table rounding can shift the gradient by at most one sample
            // over the 63-trial baseline.
            assert!((a - b).abs() < 0.05, "ch {ch}: {a} vs {b}");
        }
    }

    #[test]
    fn apertif_instance_shape() {
        let grid = DmGrid::paper_grid(4096).unwrap();
        let w = Workload::analytic("Apertif", &apertif_band(), &grid, 20_000).unwrap();
        assert_eq!(w.channels, 1024);
        assert_eq!(w.out_samples, 20_000);
        assert_eq!(w.trials, 4096);
        assert_eq!(w.useful_flop, 4096 * 20_000 * 1024);
        // Real-time line at 4,096 DMs ≈ 84 GFLOP/s.
        assert!((w.realtime_gflops - 83.9).abs() < 1.0);
        // Apertif per-trial spreads are a few samples at most.
        assert!(w.max_gradient() < 4.0, "max {}", w.max_gradient());
        assert!(w.mean_gradient() > 0.0);
    }

    #[test]
    fn lofar_gradient_is_hostile() {
        let grid = DmGrid::paper_grid(256).unwrap();
        let w = Workload::analytic("LOFAR", &lofar_band(), &grid, 200_000).unwrap();
        // Lowest channel: ≈ 900 samples of extra span per trial step.
        assert!(w.max_gradient() > 500.0, "max {}", w.max_gradient());
        // Highest channel is far milder: reuse exists at the band top.
        let min = w.gradient.iter().copied().fold(f64::MAX, f64::min);
        assert!(min < 50.0, "min {min}");
        // Gradient decreases monotonically with channel index.
        for pair in w.gradient.windows(2) {
            assert!(pair[1] < pair[0]);
        }
    }

    #[test]
    fn zero_dm_clears_gradient_only() {
        let grid = DmGrid::paper_grid(64).unwrap();
        let w = Workload::analytic("LOFAR", &lofar_band(), &grid, 200_000).unwrap();
        let z = w.zero_dm();
        assert!(z.gradient.iter().all(|&g| g == 0.0));
        assert_eq!(z.useful_flop, w.useful_flop);
        assert_eq!(z.trials, w.trials);
        assert!(z.name.contains("0dm"));
    }
}
