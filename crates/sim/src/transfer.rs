//! Host↔device transfer modeling.
//!
//! The paper excludes PCIe traffic from its measurements: "Dedispersion
//! is always used as part of a larger pipeline, so we can safely assume
//! that the input is already available in the accelerator memory, and
//! the output is kept on device for further processing" (Section IV).
//! This module makes that assumption *checkable*: it models what the
//! transfers would cost, so the claim "the pipeline hides them" can be
//! quantified per scenario rather than asserted.

use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// A host↔device interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Name, e.g. "PCIe 2.0 x16".
    pub name: &'static str,
    /// Sustained host→device bandwidth, GB/s.
    pub h2d_gbs: f64,
    /// Sustained device→host bandwidth, GB/s.
    pub d2h_gbs: f64,
    /// Per-transfer latency, microseconds.
    pub latency_us: f64,
}

/// PCI Express 2.0 x16 — the DAS-4 nodes hosting the paper's GPUs.
pub const PCIE2_X16: Interconnect = Interconnect {
    name: "PCIe 2.0 x16",
    h2d_gbs: 6.0,
    d2h_gbs: 6.0,
    latency_us: 10.0,
};

/// PCI Express 3.0 x16 — contemporary replacements.
pub const PCIE3_X16: Interconnect = Interconnect {
    name: "PCIe 3.0 x16",
    h2d_gbs: 12.0,
    d2h_gbs: 12.0,
    latency_us: 8.0,
};

/// Transfer costs of one dedispersion invocation (one second of data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferEstimate {
    /// Seconds uploading the channelized input.
    pub upload_s: f64,
    /// Seconds downloading the dedispersed output.
    pub download_s: f64,
}

impl TransferEstimate {
    /// Models moving `workload`'s buffers over `link`. The input is
    /// `c × (s + max_delay)` and the output `d × s`, both `f32`; with a
    /// streaming pipeline only the *fresh* `c × s` samples are uploaded
    /// per second (the overlap is already resident), which is what we
    /// model.
    pub fn estimate(link: &Interconnect, workload: &Workload) -> Self {
        let upload_bytes = workload.channels as f64 * workload.out_samples as f64 * 4.0;
        let download_bytes = workload.trials as f64 * workload.out_samples as f64 * 4.0;
        Self {
            upload_s: link.latency_us * 1e-6 + upload_bytes / (link.h2d_gbs * 1e9),
            download_s: link.latency_us * 1e-6 + download_bytes / (link.d2h_gbs * 1e9),
        }
    }

    /// Total transfer seconds per second of data.
    pub fn total_s(&self) -> f64 {
        self.upload_s + self.download_s
    }

    /// Whether transfers fit inside real-time alongside `compute_s`
    /// seconds of kernel time, assuming transfers and compute overlap
    /// (double buffering): the pipeline is feasible iff
    /// `max(compute, transfers) ≤ 1 s`.
    pub fn realtime_with_overlap(&self, compute_s: f64) -> bool {
        self.total_s().max(compute_s) <= 1.0
    }

    /// Whether it still fits with *serialized* transfers (no double
    /// buffering): `compute + transfers ≤ 1 s`.
    pub fn realtime_serialized(&self, compute_s: f64) -> bool {
        self.total_s() + compute_s <= 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisp_core::{DmGrid, FrequencyBand};

    fn apertif(trials: usize) -> Workload {
        Workload::analytic(
            "Apertif",
            &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            20_000,
        )
        .unwrap()
    }

    fn lofar(trials: usize) -> Workload {
        Workload::analytic(
            "LOFAR",
            &FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            200_000,
        )
        .unwrap()
    }

    #[test]
    fn apertif_transfer_magnitudes() {
        // Input: 1024 ch x 20,000 samples x 4 B ≈ 82 MB/s of data.
        let t = TransferEstimate::estimate(&PCIE2_X16, &apertif(2000));
        assert!((t.upload_s - 0.0137).abs() < 0.002, "{}", t.upload_s);
        // Output: 2,000 x 20,000 x 4 = 160 MB → ≈ 27 ms.
        assert!((t.download_s - 0.0267).abs() < 0.003, "{}", t.download_s);
        assert!(t.total_s() < 0.05);
    }

    #[test]
    fn paper_exclusion_is_justified() {
        // The paper's assumption: within the pipeline, transfers do not
        // break real-time. For the Apertif production point (2,000 DMs,
        // HD7970 ≈ 0.12 s of compute per second) both overlapped and
        // even serialized transfers fit comfortably.
        let t = TransferEstimate::estimate(&PCIE2_X16, &apertif(2000));
        assert!(t.realtime_with_overlap(0.12));
        assert!(t.realtime_serialized(0.12));
        // But LOFAR's output grows fast: at 8,192 DMs it is
        // 8,192 x 200,000 x 4 B = 6.6 GB per second of data — transfers
        // alone exceed PCIe 2.0. This is why real pipelines keep the
        // output on-device for further processing.
        let t = TransferEstimate::estimate(&PCIE2_X16, &lofar(8192));
        assert!(!t.realtime_with_overlap(0.5), "total {}", t.total_s());
        let t = TransferEstimate::estimate(&PCIE2_X16, &lofar(4096));
        assert!(t.realtime_with_overlap(0.5), "total {}", t.total_s());
    }

    #[test]
    fn faster_link_never_slower() {
        for w in [apertif(256), lofar(256)] {
            let g2 = TransferEstimate::estimate(&PCIE2_X16, &w);
            let g3 = TransferEstimate::estimate(&PCIE3_X16, &w);
            assert!(g3.total_s() < g2.total_s());
        }
    }

    #[test]
    fn upload_independent_of_trials() {
        let a = TransferEstimate::estimate(&PCIE2_X16, &apertif(2));
        let b = TransferEstimate::estimate(&PCIE2_X16, &apertif(4096));
        assert!((a.upload_s - b.upload_s).abs() < 1e-12);
        assert!(b.download_s > 100.0 * a.download_s);
    }
}
