//! # manycore-sim — analytic performance model of many-core accelerators
//!
//! The paper runs its OpenCL dedispersion kernel on five accelerators
//! (Table I): an AMD HD7970, an Intel Xeon Phi 5110P, and three NVIDIA
//! GPUs (GTX 680, K20, GTX Titan). Real devices of that generation are
//! not available to this reproduction, so this crate substitutes an
//! *analytic execution model* of the same five devices — the substrate on
//! which the auto-tuning experiments run.
//!
//! The model implements the first-order performance physics the paper
//! reasons with:
//!
//! * **Memory traffic** ([`traffic`]): cache-line-granular coalesced
//!   loads, the ≤ 2× misalignment overhead of delayed reads
//!   (Section III-B), per-channel tile spans widened by the delay spread
//!   across the tile's trial DMs (the data-reuse mechanism), aligned
//!   coalesced writes, and a mostly-cached delay table.
//! * **Occupancy** ([`occupancy`]): concurrent work-groups per compute
//!   unit limited by the register file, local memory, work-group slots
//!   and wavefront slots; SIMD-width rounding of work-groups.
//! * **Latency hiding** ([`cost`]): utilization grows with active
//!   wavefronts (TLP) and per-item unrolled accumulators (ILP/MLP) until
//!   the device saturates — producing the paper's better-than-linear
//!   scaling at small instances and plateau at large ones.
//! * **Compute ceiling** ([`cost`]): dedispersion cannot use fused
//!   multiply-adds, capping it at 50% of peak before per-element
//!   addressing overhead (Section VI).
//!
//! Device-specific runtime-maturity factors (e.g. the Xeon Phi's immature
//! OpenCL stack, Section V-D) are explicit named constants in
//! [`presets`]. They are calibrated once against the paper's reported
//! performance plateaus; every experiment is then *regenerated* from the
//! model, not hard-coded.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithm;
pub mod constraints;
pub mod cost;
pub mod device;
pub mod noise;
pub mod occupancy;
pub mod presets;
pub mod traffic;
pub mod transfer;
pub mod workload;

pub use algorithm::{Algorithm, FFT_FLOP_PER_POINT, MAX_SUBBANDS, PHASE_FLOP_PER_POINT};
pub use constraints::{check_config, ConfigViolation};
pub use cost::{BoundKind, CostEstimate, CostModel};
pub use device::{DeviceDescriptor, Vendor};
pub use occupancy::{Occupancy, OccupancyLimit};
pub use presets::{
    all_devices, amd_hd7970, intel_xeon_phi_5110p, nvidia_gtx680, nvidia_gtx_titan, nvidia_k20,
};
pub use traffic::TrafficEstimate;
pub use transfer::{Interconnect, TransferEstimate, PCIE2_X16, PCIE3_X16};
pub use workload::Workload;
