//! Dedispersion algorithm families and their arithmetic cost physics.
//!
//! The paper tunes one algorithm — brute-force direct dedispersion,
//! `d·s·c` flop for `d` trial DMs, `s` output samples, `c` channels.
//! Related work offers structurally different algorithms whose cost
//! scales differently in the DM count:
//!
//! * **Subband** (tree-style two-stage, Barsdell et al.,
//!   arXiv:1201.5380; implemented in `dedisp_core::SubbandKernel`):
//!   a coarse stage dedisperses every channel at `⌈d/factor⌉` coarse
//!   DMs, then a fine stage recombines the subband partials at all `d`
//!   trials — `⌈d/factor⌉·s·c + d·s·n_sub` flop for `n_sub` subbands.
//!   Cheaper than brute force once `factor` exceeds ~`1`, at a bounded
//!   smearing error (see `SubbandKernel::max_smear_samples`).
//! * **Fourier-domain** (FDD, Bassa et al., arXiv:2110.03482):
//!   dedispersion as phase rotation in the spectral domain. The `c`
//!   forward FFTs are paid once and *amortized across all trials*;
//!   each trial then costs an inverse FFT plus a phase-ramp
//!   accumulation — `K_fft·(c + d)·s·log₂s + K_phase·d·s` flop. The
//!   fixed FFT term makes FDD expensive at small `d` and very cheap
//!   per-trial at survey-scale `d`.
//!
//! [`Algorithm::flop`] is the per-algorithm arithmetic volume;
//! [`CostModel::evaluate_algorithm`](crate::CostModel::evaluate_algorithm)
//! turns it into predicted time and an *effective* science rate. The
//! brute-force case is exactly the classic model — downstream rate
//! tables that only ever declare `BruteForce` reproduce the historic
//! numbers bit-for-bit.

use serde::{Deserialize, Serialize};

use crate::workload::Workload;

/// Flop per FFT butterfly stage point, forward or inverse (complex
/// multiply-add counted as real operations, radix-2 accounting).
pub const FFT_FLOP_PER_POINT: f64 = 2.5;

/// Flop per output point for the FDD phase-ramp rotation and
/// accumulation (complex rotate + add).
pub const PHASE_FLOP_PER_POINT: f64 = 4.0;

/// The canonical subband count the cost model assumes: one subband per
/// channel up to 32, matching the `SubbandConfig` shapes the kernels
/// are tuned with.
pub const MAX_SUBBANDS: usize = 32;

/// A dedispersion algorithm family with its own cost asymptotics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Direct shift-and-sum over every (trial, sample, channel) —
    /// the paper's tuned kernel. Exact; `d·s·c` flop.
    #[default]
    BruteForce,
    /// Two-stage subband dedispersion: coarse stage every `factor`-th
    /// trial DM, fine recombination at all trials. Approximate within
    /// the documented smear bound; flop matches
    /// `dedisp_core::SubbandConfig::flop` at the canonical subband
    /// count.
    Subband {
        /// Coarse-stage DM stride (the `dm_stride` of the matching
        /// `SubbandConfig`). Must be ≥ 1; `1` degenerates to
        /// brute-force cost plus the recombination term.
        factor: u32,
    },
    /// Fourier-domain dedispersion: channel FFTs amortized across all
    /// trials, per-trial phase rotation + inverse FFT.
    FourierDomain,
}

impl Algorithm {
    /// Every family label, in declaration order — the label vocabulary
    /// of the `fleet_algorithm_assignments` metric family.
    pub const LABELS: [&'static str; 3] = ["brute-force", "subband", "fourier-domain"];

    /// Stable lowercase label (parameter-free: every `Subband { .. }`
    /// maps to `"subband"`).
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::BruteForce => Self::LABELS[0],
            Algorithm::Subband { .. } => Self::LABELS[1],
            Algorithm::FourierDomain => Self::LABELS[2],
        }
    }

    /// Arithmetic volume of dedispersing `trials` DMs over `samples`
    /// output samples and `channels` channels with this algorithm.
    pub fn flop_for(&self, channels: usize, samples: usize, trials: usize) -> f64 {
        let c = channels as f64;
        let s = samples as f64;
        let d = trials as f64;
        match self {
            Algorithm::BruteForce => d * s * c,
            Algorithm::Subband { factor } => {
                let stride = (*factor).max(1) as usize;
                let coarse = trials.div_ceil(stride) as f64;
                let n_sub = channels.min(MAX_SUBBANDS) as f64;
                coarse * s * c + d * s * n_sub
            }
            Algorithm::FourierDomain => {
                let log_s = s.max(2.0).log2();
                FFT_FLOP_PER_POINT * (c + d) * s * log_s + PHASE_FLOP_PER_POINT * d * s
            }
        }
    }

    /// Arithmetic volume for `workload`.
    pub fn flop(&self, workload: &Workload) -> f64 {
        self.flop_for(workload.channels, workload.out_samples, workload.trials)
    }

    /// This algorithm's arithmetic volume relative to brute force on
    /// the same workload (< 1 means less work). Brute force is exactly
    /// `1.0`.
    pub fn work_ratio(&self, workload: &Workload) -> f64 {
        match self {
            Algorithm::BruteForce => 1.0,
            _ => self.flop(workload) / Algorithm::BruteForce.flop(workload),
        }
    }

    /// Whether the algorithm computes the exact brute-force answer
    /// (subband and FDD trade bounded error for the cheaper bound).
    pub fn is_exact(&self) -> bool {
        matches!(self, Algorithm::BruteForce)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Subband { factor } => write!(f, "subband/{factor}"),
            other => f.write_str(other.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisp_core::{DmGrid, FrequencyBand};

    fn apertif(trials: usize) -> Workload {
        Workload::analytic(
            "Apertif",
            &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            20_000,
        )
        .unwrap()
    }

    #[test]
    fn brute_force_flop_is_the_workload_useful_flop() {
        let w = apertif(2000);
        assert_eq!(Algorithm::BruteForce.flop(&w), w.useful_flop as f64);
        assert_eq!(Algorithm::BruteForce.work_ratio(&w), 1.0);
    }

    #[test]
    fn subband_flop_matches_the_core_kernel_accounting() {
        // The cost model's subband term must agree with the flop count
        // the real two-stage kernel reports for the same shape.
        let w = apertif(2000);
        let factor = 32u32;
        let cfg =
            dedisp_core::SubbandConfig::new(w.channels.min(MAX_SUBBANDS), factor as usize).unwrap();
        let model = Algorithm::Subband { factor }.flop(&w);
        let kernel = cfg.flop(w.channels, w.out_samples, w.trials) as f64;
        assert_eq!(model, kernel);
    }

    #[test]
    fn subband_and_fdd_undercut_brute_force_at_survey_scale() {
        let w = apertif(2000);
        let sub = Algorithm::Subband { factor: 32 }.work_ratio(&w);
        let fdd = Algorithm::FourierDomain.work_ratio(&w);
        assert!(sub < 0.2, "subband ratio {sub}");
        assert!(fdd < 0.2, "fdd ratio {fdd}");
    }

    #[test]
    fn fdd_is_expensive_at_small_dm_counts() {
        // The fixed forward-FFT term dominates when few trials share
        // it: below a few dozen DMs, FDD does *more* work than brute
        // force — the asymmetry the planner's ladder exists to exploit.
        let small = apertif(8);
        let large = apertif(4096);
        assert!(Algorithm::FourierDomain.work_ratio(&small) > 1.0);
        assert!(Algorithm::FourierDomain.work_ratio(&large) < 0.1);
    }

    #[test]
    fn labels_and_display_are_stable() {
        assert_eq!(Algorithm::BruteForce.label(), "brute-force");
        assert_eq!(Algorithm::Subband { factor: 16 }.label(), "subband");
        assert_eq!(Algorithm::FourierDomain.label(), "fourier-domain");
        assert_eq!(Algorithm::Subband { factor: 16 }.to_string(), "subband/16");
        assert_eq!(Algorithm::default(), Algorithm::BruteForce);
    }

    #[test]
    fn serde_round_trip() {
        for alg in [
            Algorithm::BruteForce,
            Algorithm::Subband { factor: 32 },
            Algorithm::FourierDomain,
        ] {
            let json = serde_json::to_string(&alg).unwrap();
            let back: Algorithm = serde_json::from_str(&json).unwrap();
            assert_eq!(alg, back);
        }
    }
}
