//! Global-memory traffic of a tiled dedispersion launch.
//!
//! Implements the paper's memory reasoning (Section III-B):
//!
//! * Reads and writes are coalesced; the transaction granularity is the
//!   device cache line.
//! * Reads shifted by a delay are generally *unaligned*: each contiguous
//!   segment costs up to one extra line (the paper's worst-case factor
//!   two, amortized when the segment spans many lines).
//! * A tile covering `D` trial DMs reads, per channel, the **union** of
//!   the trials' sample windows: `tile_time + (D−1)·min(gradient,
//!   tile_time)` — when consecutive trials' delays differ by more than a
//!   tile width, the windows are disjoint and there is no reuse at all
//!   (the LOFAR low-channel regime); when delays coincide, one window
//!   serves all trials (the Apertif / 0-DM regime).
//! * The delay table is small and hot, so only a fraction of its lookups
//!   reach DRAM.

use dedisp_core::KernelConfig;
use serde::{Deserialize, Serialize};

use crate::device::DeviceDescriptor;
use crate::workload::Workload;

/// Fraction of delay-table lookups missing the on-chip caches.
pub const DELAY_TABLE_MISS_RATE: f64 = 0.1;

/// Estimated DRAM traffic of one dedispersion launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficEstimate {
    /// Bytes read from the input time-series (line-granular).
    pub read_bytes: f64,
    /// Bytes written to the output (coalesced, aligned).
    pub write_bytes: f64,
    /// Bytes read from the delay table (after caching).
    pub delay_bytes: f64,
    /// Output elements actually computed, including partial-tile padding
    /// (`≥` the useful `d·s`).
    pub computed_elements: f64,
    /// Flop actually executed (`computed_elements × channels`).
    pub computed_flop: f64,
}

impl TrafficEstimate {
    /// Estimates the traffic of launching `config` on `workload` against
    /// `device`'s memory system.
    pub fn estimate(device: &DeviceDescriptor, workload: &Workload, config: &KernelConfig) -> Self {
        let line = f64::from(device.cache_line_elems());
        let line_bytes = f64::from(device.cache_line_bytes);
        let t = f64::from(config.tile_time());
        let d = f64::from(config.tile_dm());
        let (n_time, n_dm) = config.grid(workload.out_samples, workload.trials);
        let n_wg = (n_time * n_dm) as f64;

        // Per-work-group read lines, channel by channel.
        let mut lines_per_wg = 0.0;
        for &g in &workload.gradient {
            if g >= t {
                // Disjoint windows: D separate unaligned segments.
                lines_per_wg += d * ((t / line).ceil() + 1.0);
            } else {
                // Overlapping windows: one segment spanning the union.
                let span = t + (d - 1.0) * g;
                let aligned =
                    g <= 0.0 && config.tile_time().is_multiple_of(device.cache_line_elems());
                let misalign = if aligned { 0.0 } else { 1.0 };
                lines_per_wg += (span / line).ceil() + misalign;
            }
        }
        let read_bytes = n_wg * lines_per_wg * line_bytes;

        let computed_elements = n_wg * t * d;
        let write_bytes = computed_elements * 4.0;
        let delay_bytes = n_wg * workload.channels as f64 * d * 4.0 * DELAY_TABLE_MISS_RATE;
        let computed_flop = computed_elements * workload.channels as f64;

        Self {
            read_bytes,
            write_bytes,
            delay_bytes,
            computed_elements,
            computed_flop,
        }
    }

    /// Total DRAM bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.read_bytes + self.write_bytes + self.delay_bytes
    }

    /// Effective arithmetic intensity (useful flop per byte moved).
    pub fn achieved_ai(&self, useful_flop: u64) -> f64 {
        useful_flop as f64 / self.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::amd_hd7970;
    use dedisp_core::{DmGrid, FrequencyBand};

    fn apertif(trials: usize) -> Workload {
        Workload::analytic(
            "Apertif",
            &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            20_000,
        )
        .unwrap()
    }

    fn lofar(trials: usize) -> Workload {
        Workload::analytic(
            "LOFAR",
            &FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            200_000,
        )
        .unwrap()
    }

    #[test]
    fn no_reuse_ai_obeys_eq2() {
        // A single-trial tile on a real workload: AI < 1/4 (Eq. 2).
        let dev = amd_hd7970();
        let w = apertif(256);
        let c = KernelConfig::new(256, 1, 1, 1).unwrap();
        let t = TrafficEstimate::estimate(&dev, &w, &c);
        let ai = t.achieved_ai(w.useful_flop);
        assert!(ai < 0.25, "AI {ai}");
        assert!(ai > 0.15, "AI {ai} unreasonably low");
    }

    #[test]
    fn dm_tiling_raises_ai_on_apertif() {
        let dev = amd_hd7970();
        let w = apertif(4096);
        let narrow = KernelConfig::new(64, 1, 4, 1).unwrap();
        let wide = KernelConfig::new(64, 4, 4, 8).unwrap(); // D = 32
        let ai_narrow = TrafficEstimate::estimate(&dev, &w, &narrow).achieved_ai(w.useful_flop);
        let ai_wide = TrafficEstimate::estimate(&dev, &w, &wide).achieved_ai(w.useful_flop);
        assert!(
            ai_wide > 4.0 * ai_narrow,
            "narrow {ai_narrow}, wide {ai_wide}"
        );
    }

    #[test]
    fn lofar_low_channels_defeat_reuse() {
        // On LOFAR the same DM tiling buys far less than on Apertif.
        let dev = amd_hd7970();
        let ap = apertif(1024);
        let lo = lofar(1024);
        let c = KernelConfig::new(64, 4, 1, 4).unwrap(); // D = 16
        let gain_ap = TrafficEstimate::estimate(&dev, &ap, &c).achieved_ai(ap.useful_flop)
            / TrafficEstimate::estimate(&dev, &ap, &KernelConfig::new(64, 1, 1, 1).unwrap())
                .achieved_ai(ap.useful_flop);
        let gain_lo = TrafficEstimate::estimate(&dev, &lo, &c).achieved_ai(lo.useful_flop)
            / TrafficEstimate::estimate(&dev, &lo, &KernelConfig::new(64, 1, 1, 1).unwrap())
                .achieved_ai(lo.useful_flop);
        assert!(
            gain_ap > 3.0 * gain_lo,
            "apertif gain {gain_ap}, lofar gain {gain_lo}"
        );
    }

    #[test]
    fn zero_dm_restores_perfect_reuse() {
        let dev = amd_hd7970();
        let lo = lofar(1024);
        let zero = lo.zero_dm();
        let c = KernelConfig::new(64, 4, 1, 4).unwrap();
        let ai_real = TrafficEstimate::estimate(&dev, &lo, &c).achieved_ai(lo.useful_flop);
        let ai_zero = TrafficEstimate::estimate(&dev, &zero, &c).achieved_ai(zero.useful_flop);
        assert!(ai_zero > 2.0 * ai_real, "real {ai_real}, zero {ai_zero}");
    }

    #[test]
    fn small_tiles_pay_misalignment_overhead() {
        // The paper's worst case: a tile of one cache line pays up to 2x.
        let dev = amd_hd7970(); // 16-element lines
        let w = apertif(256);
        let tiny = KernelConfig::new(16, 1, 1, 1).unwrap();
        let big = KernelConfig::new(256, 1, 4, 1).unwrap(); // 1024 samples
        let r_tiny = TrafficEstimate::estimate(&dev, &w, &tiny);
        let r_big = TrafficEstimate::estimate(&dev, &w, &big);
        // Useful bytes are identical; the tiny tile moves almost twice as
        // much, the big tile is near 1x.
        let useful = (w.trials * w.out_samples * w.channels) as f64 * 4.0;
        assert!(r_tiny.read_bytes > 1.8 * useful);
        assert!(r_big.read_bytes < 1.1 * useful);
    }

    #[test]
    fn partial_tiles_inflate_computed_elements() {
        let dev = amd_hd7970();
        let w = apertif(256);
        // 20,000 samples with a 4,096-sample tile: 5 tiles cover 20,480.
        let c = KernelConfig::new(256, 1, 16, 1).unwrap();
        let t = TrafficEstimate::estimate(&dev, &w, &c);
        let useful = (w.trials * w.out_samples) as f64;
        assert!(t.computed_elements > useful);
        assert_eq!(t.computed_elements, 5.0 * 4096.0 * 256.0);
        assert_eq!(t.computed_flop, t.computed_elements * 1024.0);
    }

    #[test]
    fn writes_scale_with_computed_elements() {
        let dev = amd_hd7970();
        let w = apertif(64);
        let c = KernelConfig::new(100, 1, 2, 1).unwrap(); // divides evenly
        let t = TrafficEstimate::estimate(&dev, &w, &c);
        assert_eq!(t.write_bytes, (64 * 20_000 * 4) as f64);
    }

    #[test]
    fn delay_traffic_is_small() {
        let dev = amd_hd7970();
        let w = apertif(1024);
        let c = KernelConfig::new(64, 4, 2, 4).unwrap();
        let t = TrafficEstimate::estimate(&dev, &w, &c);
        assert!(t.delay_bytes < 0.1 * t.read_bytes);
    }
}
