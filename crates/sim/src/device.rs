//! Device descriptors: the hardware parameters of a many-core accelerator.
//!
//! The first five fields mirror the paper's Table I (compute elements,
//! peak GFLOP/s, peak GB/s); the rest are the microarchitectural
//! quantities the paper's analysis appeals to — wavefront width,
//! work-group and register limits, local-memory size, cache-line size —
//! plus explicitly-named model calibration factors.

use serde::{Deserialize, Serialize};

/// Accelerator vendor, used for grouping results as the paper does
/// ("the three NVIDIA GPUs ... sit in the middle").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// AMD (GCN GPUs).
    Amd,
    /// NVIDIA (Kepler GPUs).
    Nvidia,
    /// Intel (Xeon Phi / MIC).
    Intel,
}

/// Everything the cost model knows about one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDescriptor {
    /// Marketing name, e.g. "AMD HD7970".
    pub name: String,
    /// Vendor, for grouping.
    pub vendor: Vendor,
    /// Compute units (GCN CUs, Kepler SMXs, Phi cores).
    pub compute_units: u32,
    /// Compute elements per compute unit (Table I column "CEs" is
    /// `elems_per_cu × compute_units`).
    pub elems_per_cu: u32,
    /// Peak single-precision throughput in GFLOP/s (Table I).
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s (Table I).
    pub peak_bandwidth_gbs: f64,
    /// SIMD execution width in work-items (AMD wavefront 64, NVIDIA warp
    /// 32, Phi 512-bit vector = 16 floats).
    pub simd_width: u32,
    /// Maximum work-items per work-group the runtime accepts.
    pub max_wg_size: u32,
    /// 32-bit registers per compute unit.
    pub regfile_per_cu: u32,
    /// Maximum registers one work-item may use.
    pub max_regs_per_item: u32,
    /// Local (shared) memory per compute unit, in bytes (shared by all
    /// resident work-groups).
    pub local_mem_per_cu: u32,
    /// Largest local-memory allocation a single work-group may make.
    pub max_local_per_wg: u32,
    /// Cache-line / memory-transaction granularity, in bytes.
    pub cache_line_bytes: u32,
    /// Maximum resident work-groups per compute unit.
    pub max_wg_per_cu: u32,
    /// Maximum resident wavefronts per compute unit.
    pub max_waves_per_cu: u32,
    /// Fixed kernel launch overhead, in microseconds.
    pub launch_overhead_us: f64,
    /// Issue-slot cost of one accumulate, including address arithmetic
    /// and loop control (instructions per useful flop).
    pub instr_per_flop: f64,
    /// Fraction of the theoretical issue rate the compiled kernel
    /// sustains (runtime/compiler maturity; ILP ceiling of the core).
    pub compute_efficiency: f64,
    /// Fraction of pump bandwidth achievable by streaming loads.
    pub bandwidth_efficiency: f64,
    /// How strongly per-item unrolled accumulators contribute to latency
    /// hiding (memory-level parallelism weight).
    pub ilp_hiding: f64,
    /// How strongly per-item unrolling amortizes the per-element
    /// address/loop instruction overhead. Kepler's compiler depends on
    /// unrolled ILP to approach its issue rate, so this is significant
    /// for NVIDIA; GCN offloads addressing to its scalar unit, so for
    /// AMD it is zero — the reason the paper's K20/Titan optima are
    /// register-heavy while the HD7970's stay light (Figures 4-5).
    pub unroll_amortization: f64,
    /// Wavefronts per compute unit needed for full latency hiding.
    pub waves_saturate: f64,
}

impl DeviceDescriptor {
    /// Total compute elements, as reported in Table I.
    pub fn compute_elements(&self) -> u32 {
        self.compute_units * self.elems_per_cu
    }

    /// Theoretical peak without fused multiply-add. Dedispersion's inner
    /// operation is a plain add, so at most half the FMA-rated peak is
    /// reachable (paper, Section VI).
    pub fn no_fma_peak_gflops(&self) -> f64 {
        self.peak_gflops / 2.0
    }

    /// The effective compute ceiling for dedispersion: no-FMA peak,
    /// divided by per-element instruction overhead, scaled by the
    /// compiled-code efficiency.
    pub fn dedispersion_compute_ceiling_gflops(&self) -> f64 {
        self.no_fma_peak_gflops() / self.instr_per_flop * self.compute_efficiency
    }

    /// Effective streaming bandwidth in GB/s.
    pub fn effective_bandwidth_gbs(&self) -> f64 {
        self.peak_bandwidth_gbs * self.bandwidth_efficiency
    }

    /// Elements of a cache line when holding `f32` values.
    pub fn cache_line_elems(&self) -> u32 {
        self.cache_line_bytes / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceDescriptor {
        DeviceDescriptor {
            name: "test".into(),
            vendor: Vendor::Amd,
            compute_units: 4,
            elems_per_cu: 64,
            peak_gflops: 1000.0,
            peak_bandwidth_gbs: 100.0,
            simd_width: 64,
            max_wg_size: 256,
            regfile_per_cu: 65536,
            max_regs_per_item: 128,
            local_mem_per_cu: 32768,
            max_local_per_wg: 32768,
            cache_line_bytes: 64,
            max_wg_per_cu: 16,
            max_waves_per_cu: 40,
            launch_overhead_us: 5.0,
            instr_per_flop: 4.0,
            compute_efficiency: 0.8,
            bandwidth_efficiency: 0.9,
            ilp_hiding: 0.3,
            unroll_amortization: 0.0,
            waves_saturate: 24.0,
        }
    }

    #[test]
    fn derived_quantities() {
        let d = sample();
        assert_eq!(d.compute_elements(), 256);
        assert_eq!(d.no_fma_peak_gflops(), 500.0);
        assert!((d.dedispersion_compute_ceiling_gflops() - 100.0).abs() < 1e-9);
        assert!((d.effective_bandwidth_gbs() - 90.0).abs() < 1e-9);
        assert_eq!(d.cache_line_elems(), 16);
    }

    #[test]
    fn serde_roundtrip() {
        let d = sample();
        let json = serde_json::to_string(&d).unwrap();
        let back: DeviceDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
