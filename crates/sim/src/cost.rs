//! The cost model: predicted execution time and GFLOP/s for a
//! (device, workload, configuration) triple.
//!
//! Execution time is the maximum of the memory phase and the compute
//! phase (they overlap on all modeled devices), each derated by the
//! latency-hiding utilization from [`crate::occupancy`], plus a fixed
//! launch overhead. The reported GFLOP/s uses the *useful* flop
//! (`d·s·c`), exactly as the paper's metric does, while padded
//! partial-tile work still costs time — so the tuner is pushed toward
//! tiles that divide the problem, as the paper's tuner was.

use dedisp_core::KernelConfig;
use serde::{Deserialize, Serialize};

use crate::algorithm::Algorithm;
use crate::constraints::{check_config, ConfigViolation};
use crate::device::DeviceDescriptor;
use crate::noise::time_multiplier;
use crate::occupancy::Occupancy;
use crate::traffic::TrafficEstimate;
use crate::workload::Workload;

/// Which phase dominated the predicted execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundKind {
    /// DRAM traffic dominates (the paper's claim for every real setup).
    Memory,
    /// Instruction issue dominates (reachable only with abundant reuse).
    Compute,
}

/// The model's prediction for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Predicted wall-clock seconds for one invocation (one second of
    /// observed data).
    pub time_s: f64,
    /// Useful GFLOP/s — the paper's performance metric.
    pub gflops: f64,
    /// Seconds spent in the memory phase.
    pub mem_time_s: f64,
    /// Seconds spent in the compute phase.
    pub compute_time_s: f64,
    /// Which phase bound the execution.
    pub bound: BoundKind,
    /// Latency-hiding utilization in `[0, 1]`.
    pub utilization: f64,
    /// Achieved arithmetic intensity, flop/byte.
    pub achieved_ai: f64,
}

/// The analytic cost model for one device.
#[derive(Debug, Clone)]
pub struct CostModel {
    device: DeviceDescriptor,
    noise: bool,
}

impl CostModel {
    /// Creates a model with measurement-like perturbation enabled (the
    /// default used by all experiments).
    pub fn new(device: DeviceDescriptor) -> Self {
        Self {
            device,
            noise: true,
        }
    }

    /// Creates a noise-free model (exact analytic output), useful for
    /// invariant tests.
    pub fn exact(device: DeviceDescriptor) -> Self {
        Self {
            device,
            noise: false,
        }
    }

    /// The device this model simulates.
    pub fn device(&self) -> &DeviceDescriptor {
        &self.device
    }

    /// Predicts the execution of `config` on `workload`.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint if the configuration is not
    /// meaningful on this device/workload.
    pub fn evaluate(
        &self,
        workload: &Workload,
        config: &KernelConfig,
    ) -> Result<CostEstimate, ConfigViolation> {
        check_config(&self.device, workload, config)?;
        let dev = &self.device;

        let (n_time, n_dm) = config.grid(workload.out_samples, workload.trials);
        let n_wg = (n_time * n_dm) as u64;
        let occ = Occupancy::compute(dev, workload, config, n_wg);
        let hiding = occ.hiding(dev, config);
        // Tiles spanning several trial DMs stage input through local
        // memory behind barriers; with few resident work-groups per CU
        // there is nothing to overlap the staging phase and barrier
        // drains with, so utilization degrades. Kernels without staging
        // (single-trial tiles) have no barriers at all.
        let stage_eff = if config.tile_dm() > 1 {
            occ.wg_per_cu_actual / (occ.wg_per_cu_actual + 1.0)
        } else {
            1.0
        };
        let u_mem = (hiding * stage_eff).max(1e-3);
        let u_comp = (hiding * stage_eff).max(1e-3);

        let traffic = TrafficEstimate::estimate(dev, workload, config);
        let mem_time_s = traffic.total_bytes() / (dev.effective_bandwidth_gbs() * 1e9 * u_mem);

        // Per-item unrolling amortizes address/loop overhead on devices
        // whose pipelines depend on compiler-scheduled ILP.
        let unroll = f64::from(config.registers_per_item());
        let overhead =
            (dev.instr_per_flop - 1.0) / (1.0 + dev.unroll_amortization * (unroll - 1.0));
        let ceiling = dev.no_fma_peak_gflops() / (1.0 + overhead) * dev.compute_efficiency * 1e9;
        let compute_time_s = traffic.computed_flop / (ceiling * occ.simd_efficiency * u_comp);

        let mut time_s = dev.launch_overhead_us * 1e-6 + mem_time_s.max(compute_time_s);
        if self.noise {
            time_s *= time_multiplier(&dev.name, &workload.name, workload.trials, config);
        }

        let bound = if mem_time_s >= compute_time_s {
            BoundKind::Memory
        } else {
            BoundKind::Compute
        };

        Ok(CostEstimate {
            time_s,
            gflops: workload.useful_flop as f64 / time_s / 1e9,
            mem_time_s,
            compute_time_s,
            bound,
            utilization: hiding,
            achieved_ai: traffic.achieved_ai(workload.useful_flop),
        })
    }

    /// Predicts the execution of `config` on `workload` when the
    /// device runs `algorithm` instead of the brute-force kernel.
    ///
    /// The alternate algorithms move proportionally less data and issue
    /// proportionally fewer instructions, so both phases scale by the
    /// algorithm's [`Algorithm::work_ratio`] while the fixed launch
    /// overhead stays. The reported `gflops` remains the *effective
    /// science rate* — useful brute-force flop per second of predicted
    /// wall clock — so rates stay comparable across algorithms and a
    /// cheaper algorithm shows a *higher* effective rate.
    /// `Algorithm::BruteForce` returns exactly what [`Self::evaluate`]
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns the violated constraint if the configuration is not
    /// meaningful on this device/workload.
    pub fn evaluate_algorithm(
        &self,
        workload: &Workload,
        config: &KernelConfig,
        algorithm: Algorithm,
    ) -> Result<CostEstimate, ConfigViolation> {
        let base = self.evaluate(workload, config)?;
        if algorithm == Algorithm::BruteForce {
            return Ok(base);
        }
        let ratio = algorithm.work_ratio(workload);
        let mem_time_s = base.mem_time_s * ratio;
        let compute_time_s = base.compute_time_s * ratio;
        let mut time_s = self.device.launch_overhead_us * 1e-6 + mem_time_s.max(compute_time_s);
        if self.noise {
            time_s *= time_multiplier(&self.device.name, &workload.name, workload.trials, config);
        }
        let bound = if mem_time_s >= compute_time_s {
            BoundKind::Memory
        } else {
            BoundKind::Compute
        };
        Ok(CostEstimate {
            time_s,
            gflops: workload.useful_flop as f64 / time_s / 1e9,
            mem_time_s,
            compute_time_s,
            bound,
            utilization: base.utilization,
            achieved_ai: base.achieved_ai,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{all_devices, amd_hd7970, intel_xeon_phi_5110p};
    use dedisp_core::{DmGrid, FrequencyBand};

    fn apertif(trials: usize) -> Workload {
        Workload::analytic(
            "Apertif",
            &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            20_000,
        )
        .unwrap()
    }

    fn lofar(trials: usize) -> Workload {
        Workload::analytic(
            "LOFAR",
            &FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            200_000,
        )
        .unwrap()
    }

    #[test]
    fn invalid_config_is_rejected() {
        let model = CostModel::new(amd_hd7970());
        let w = apertif(64);
        let c = KernelConfig::new(512, 1, 1, 1).unwrap(); // > 256 items
        assert!(model.evaluate(&w, &c).is_err());
    }

    #[test]
    fn exact_model_is_deterministic_and_noise_free() {
        let exact = CostModel::exact(amd_hd7970());
        let noisy = CostModel::new(amd_hd7970());
        let w = apertif(512);
        let c = KernelConfig::new(64, 4, 2, 4).unwrap();
        let a = exact.evaluate(&w, &c).unwrap();
        let b = exact.evaluate(&w, &c).unwrap();
        assert_eq!(a.time_s, b.time_s);
        let n = noisy.evaluate(&w, &c).unwrap();
        assert!((n.time_s / a.time_s - 1.0).abs() <= 0.031);
    }

    #[test]
    fn gflops_consistent_with_time() {
        let model = CostModel::exact(amd_hd7970());
        let w = apertif(1024);
        let c = KernelConfig::new(64, 4, 2, 4).unwrap();
        let e = model.evaluate(&w, &c).unwrap();
        let expect = w.useful_flop as f64 / e.time_s / 1e9;
        assert!((e.gflops - expect).abs() < 1e-9);
        assert!(e.time_s > e.mem_time_s.max(e.compute_time_s));
    }

    #[test]
    fn more_bandwidth_never_slower() {
        let base = amd_hd7970();
        let mut fat = base.clone();
        fat.peak_bandwidth_gbs *= 2.0;
        let w = lofar(1024);
        let c = KernelConfig::new(128, 2, 2, 1).unwrap();
        let t_base = CostModel::exact(base).evaluate(&w, &c).unwrap().time_s;
        let t_fat = CostModel::exact(fat).evaluate(&w, &c).unwrap().time_s;
        assert!(t_fat <= t_base);
    }

    #[test]
    fn lofar_is_memory_bound_apertif_tiles_can_be_compute_bound() {
        // The paper's central claim, per setup: LOFAR (no reuse) is
        // memory-bound; Apertif with a wide DM tile saturates compute.
        let model = CostModel::exact(amd_hd7970());
        let lo = lofar(1024);
        let no_reuse = KernelConfig::new(256, 1, 4, 1).unwrap();
        let e = model.evaluate(&lo, &no_reuse).unwrap();
        assert_eq!(e.bound, BoundKind::Memory);

        let ap = apertif(1024);
        let wide = KernelConfig::new(64, 4, 4, 8).unwrap(); // D = 32
        let e = model.evaluate(&ap, &wide).unwrap();
        assert_eq!(e.bound, BoundKind::Compute);
    }

    #[test]
    fn apertif_plateau_near_paper_value() {
        // Figure 6: the tuned HD7970 plateaus around 350 GFLOP/s. A good
        // hand-picked configuration should land in that neighborhood.
        let model = CostModel::exact(amd_hd7970());
        let w = apertif(4096);
        let c = KernelConfig::new(64, 4, 4, 8).unwrap();
        let e = model.evaluate(&w, &c).unwrap();
        assert!(
            e.gflops > 250.0 && e.gflops < 450.0,
            "HD7970 Apertif {} GFLOP/s",
            e.gflops
        );
    }

    #[test]
    fn phi_is_roughly_an_order_of_magnitude_slower_on_apertif() {
        let hd = CostModel::exact(amd_hd7970());
        let phi = CostModel::exact(intel_xeon_phi_5110p());
        let w = apertif(4096);
        let hd_best = hd
            .evaluate(&w, &KernelConfig::new(64, 4, 4, 8).unwrap())
            .unwrap();
        let phi_best = phi
            .evaluate(&w, &KernelConfig::new(16, 4, 4, 8).unwrap())
            .unwrap();
        let ratio = hd_best.gflops / phi_best.gflops;
        assert!(ratio > 4.0, "ratio {ratio}");
    }

    #[test]
    fn performance_grows_then_plateaus_with_instance_size() {
        let model = CostModel::exact(amd_hd7970());
        let c = KernelConfig::new(64, 4, 2, 2).unwrap(); // D = 8
        let g = |trials: usize| model.evaluate(&apertif(trials), &c).unwrap().gflops;
        let small = g(8);
        let mid = g(256);
        let large = g(4096);
        assert!(small < mid, "small {small}, mid {mid}");
        // Beyond saturation the curve flattens (within 25%).
        assert!((large - mid).abs() / mid < 0.25, "mid {mid}, large {large}");
    }

    #[test]
    fn zero_dm_boosts_lofar_much_more_than_apertif() {
        // The paper's third experiment (Figures 11-12): with all delays
        // zero, LOFAR's performance jumps to Apertif-like levels while
        // Apertif barely moves.
        let model = CostModel::exact(amd_hd7970());
        let c = KernelConfig::new(64, 4, 2, 4).unwrap(); // D = 16
        let lo = lofar(1024);
        let ap = apertif(1024);
        let lo_gain = model.evaluate(&lo.zero_dm(), &c).unwrap().gflops
            / model.evaluate(&lo, &c).unwrap().gflops;
        let ap_gain = model.evaluate(&ap.zero_dm(), &c).unwrap().gflops
            / model.evaluate(&ap, &c).unwrap().gflops;
        assert!(lo_gain > 2.0, "LOFAR gain {lo_gain}");
        assert!(ap_gain < 1.3, "Apertif gain {ap_gain}");
    }

    #[test]
    fn brute_force_algorithm_is_the_classic_model_bit_for_bit() {
        let model = CostModel::new(amd_hd7970());
        let w = apertif(2000);
        let c = KernelConfig::new(64, 4, 4, 8).unwrap();
        let classic = model.evaluate(&w, &c).unwrap();
        let routed = model
            .evaluate_algorithm(&w, &c, Algorithm::BruteForce)
            .unwrap();
        assert_eq!(classic, routed);
    }

    #[test]
    fn cheaper_algorithms_raise_the_effective_rate_at_survey_scale() {
        let model = CostModel::exact(amd_hd7970());
        let w = apertif(2000);
        let c = KernelConfig::new(64, 4, 4, 8).unwrap();
        let brute = model.evaluate(&w, &c).unwrap();
        let sub = model
            .evaluate_algorithm(&w, &c, Algorithm::Subband { factor: 32 })
            .unwrap();
        let fdd = model
            .evaluate_algorithm(&w, &c, Algorithm::FourierDomain)
            .unwrap();
        assert!(sub.time_s < brute.time_s);
        assert!(fdd.time_s < brute.time_s);
        assert!(sub.gflops > brute.gflops);
        assert!(fdd.gflops > brute.gflops);
        // At 8 trials the FFT term dominates and FDD loses to brute force.
        let small = apertif(8);
        let c_small = KernelConfig::new(64, 4, 2, 2).unwrap();
        let b = model.evaluate(&small, &c_small).unwrap();
        let f = model
            .evaluate_algorithm(&small, &c_small, Algorithm::FourierDomain)
            .unwrap();
        assert!(f.time_s > b.time_s);
    }

    #[test]
    fn all_devices_evaluate_some_config() {
        let w = apertif(256);
        for dev in all_devices() {
            let wi_time = if dev.name.contains("Phi") { 16 } else { 64 };
            let c = KernelConfig::new(wi_time, 2, 2, 2).unwrap();
            let model = CostModel::new(dev);
            let e = model.evaluate(&w, &c).unwrap();
            assert!(e.gflops > 0.0 && e.time_s > 0.0);
            assert!(e.utilization > 0.0 && e.utilization <= 1.0);
        }
    }
}
