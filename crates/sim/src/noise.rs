//! Deterministic measurement perturbation.
//!
//! Real measurements scatter: the paper averages ten runs, and its
//! optimization-space statistics (Figures 8–10) reflect run-to-run
//! variance on real machines. The model is deterministic, so we add a
//! small, *reproducible* perturbation keyed by the (device, workload,
//! configuration) triple: a hash-based multiplier, never a global RNG.
//! The same query always yields the same "measurement".

use dedisp_core::KernelConfig;

/// Relative amplitude of the perturbation (±3%), comparable to the
/// run-to-run spread of a well-controlled GPU benchmark.
pub const NOISE_AMPLITUDE: f64 = 0.03;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash step.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn hash_str(seed: u64, s: &str) -> u64 {
    s.bytes().fold(seed, |acc, b| mix(acc ^ u64::from(b)))
}

/// A multiplicative perturbation in `[1 − A, 1 + A]` keyed by the query.
pub fn time_multiplier(
    device_name: &str,
    workload_name: &str,
    trials: usize,
    config: &KernelConfig,
) -> f64 {
    let mut h = hash_str(0xDEDB_EEF0, device_name);
    h = hash_str(h, workload_name);
    h = mix(h ^ trials as u64);
    h = mix(h
        ^ (u64::from(config.wi_time()) << 48)
        ^ (u64::from(config.wi_dm()) << 32)
        ^ (u64::from(config.el_time()) << 16)
        ^ u64::from(config.el_dm()));
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    1.0 + NOISE_AMPLITUDE * (2.0 * unit - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(a: u32, b: u32, c: u32, d: u32) -> KernelConfig {
        KernelConfig::new(a, b, c, d).unwrap()
    }

    #[test]
    fn deterministic() {
        let c = cfg(8, 4, 2, 2);
        let a = time_multiplier("dev", "w", 128, &c);
        let b = time_multiplier("dev", "w", 128, &c);
        assert_eq!(a, b);
    }

    #[test]
    fn within_bounds() {
        for wt in [2u32, 16, 64, 250] {
            for ed in [1u32, 2, 4] {
                let m = time_multiplier("AMD HD7970", "Apertif", 1024, &cfg(wt, 2, 3, ed));
                assert!((1.0 - NOISE_AMPLITUDE..=1.0 + NOISE_AMPLITUDE).contains(&m));
            }
        }
    }

    #[test]
    fn varies_with_every_key_component() {
        let base = time_multiplier("dev", "w", 128, &cfg(8, 4, 2, 2));
        assert_ne!(base, time_multiplier("dev2", "w", 128, &cfg(8, 4, 2, 2)));
        assert_ne!(base, time_multiplier("dev", "w2", 128, &cfg(8, 4, 2, 2)));
        assert_ne!(base, time_multiplier("dev", "w", 256, &cfg(8, 4, 2, 2)));
        assert_ne!(base, time_multiplier("dev", "w", 128, &cfg(8, 4, 2, 1)));
        assert_ne!(base, time_multiplier("dev", "w", 128, &cfg(4, 8, 2, 2)));
    }

    #[test]
    fn mean_is_near_one() {
        let mut sum = 0.0;
        let mut n = 0;
        for wt in 1..=64u32 {
            let m = time_multiplier("dev", "w", 512, &cfg(wt, 2, 3, 1));
            sum += m;
            n += 1;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }
}
