//! Occupancy: how many work-groups a compute unit keeps resident, and
//! how much latency-hiding parallelism that provides.
//!
//! The paper's tuning results are occupancy stories: the HD7970 prefers
//! maximal work-groups of light work-items because its register file
//! sustains many resident wavefronts that saturate its bandwidth, while
//! the K20/Titan prefer fewer, register-heavy work-items whose unrolled
//! accumulators provide instruction-level parallelism instead
//! (Section V-A). This module computes exactly those resident limits.

use dedisp_core::KernelConfig;
use serde::{Deserialize, Serialize};

use crate::constraints::{local_bytes, registers_per_item};
use crate::device::DeviceDescriptor;
use crate::workload::Workload;

/// The binding resource that limits resident work-groups per compute
/// unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimit {
    /// The per-CU register file.
    Registers,
    /// Local (shared) memory used for tile staging.
    LocalMemory,
    /// The device's resident work-group slots.
    WorkGroupSlots,
    /// The device's resident wavefront slots.
    WaveSlots,
    /// Fewer work-groups exist than the device could keep resident.
    GridSize,
}

/// Occupancy figures for one (device, workload, config, grid) tuple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Wavefronts one work-group occupies.
    pub waves_per_wg: u32,
    /// Resident work-groups a compute unit can hold (resource limit).
    pub wg_per_cu_limit: u32,
    /// Which resource binds that limit.
    pub limited_by: OccupancyLimit,
    /// Work-groups actually resident per compute unit, averaged over the
    /// device (fractional when the grid cannot fill every CU).
    pub wg_per_cu_actual: f64,
    /// Wavefronts actually resident per compute unit.
    pub active_waves: f64,
    /// Fraction of SIMD lanes doing useful work in a full wavefront set
    /// (1.0 when `work_items` is a multiple of the SIMD width).
    pub simd_efficiency: f64,
}

impl Occupancy {
    /// Computes occupancy for `config` launched as `n_wg` work-groups.
    ///
    /// Callers must have validated `config` with
    /// [`crate::constraints::check_config`] first; this function assumes
    /// at least one work-group fits on a compute unit.
    pub fn compute(
        device: &DeviceDescriptor,
        workload: &Workload,
        config: &KernelConfig,
        n_wg: u64,
    ) -> Self {
        let wi = config.work_items();
        let waves_per_wg = wi.div_ceil(device.simd_width);
        debug_assert!(waves_per_wg >= 1);

        let regs = registers_per_item(config);
        let by_regs = device.regfile_per_cu / (regs * wi).max(1);
        let lmem = local_bytes(config, workload);
        let by_local = u64::from(device.local_mem_per_cu)
            .checked_div(lmem)
            .unwrap_or(u64::from(u32::MAX))
            .min(u64::from(u32::MAX)) as u32;
        let by_slots = device.max_wg_per_cu;
        let by_waves = device.max_waves_per_cu / waves_per_wg;

        let (wg_per_cu_limit, limited_by) = [
            (by_regs, OccupancyLimit::Registers),
            (by_local, OccupancyLimit::LocalMemory),
            (by_slots, OccupancyLimit::WorkGroupSlots),
            (by_waves, OccupancyLimit::WaveSlots),
        ]
        .into_iter()
        .min_by_key(|&(v, _)| v)
        .expect("non-empty limit list");
        debug_assert!(wg_per_cu_limit >= 1, "config must have been validated");

        let grid_share = n_wg as f64 / f64::from(device.compute_units);
        let (wg_per_cu_actual, limited_by) = if grid_share < f64::from(wg_per_cu_limit) {
            (grid_share, OccupancyLimit::GridSize)
        } else {
            (f64::from(wg_per_cu_limit), limited_by)
        };

        let active_waves = wg_per_cu_actual * f64::from(waves_per_wg);
        let simd_efficiency = f64::from(wi) / f64::from(waves_per_wg * device.simd_width);

        Self {
            waves_per_wg,
            wg_per_cu_limit,
            limited_by,
            wg_per_cu_actual,
            active_waves,
            simd_efficiency,
        }
    }

    /// The latency-hiding factor: thread-level parallelism (resident
    /// wavefronts towards the device's saturation point) boosted by the
    /// instruction-level parallelism of per-item unrolled accumulators.
    /// 1.0 means fully hidden latency.
    pub fn hiding(&self, device: &DeviceDescriptor, config: &KernelConfig) -> f64 {
        let ilp = 1.0 + device.ilp_hiding * (1.0 + f64::from(config.registers_per_item())).ln();
        (self.active_waves * ilp / device.waves_saturate).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{amd_hd7970, nvidia_k20};
    use dedisp_core::{DmGrid, FrequencyBand};

    fn workload(trials: usize) -> Workload {
        Workload::analytic(
            "Apertif",
            &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            20_000,
        )
        .unwrap()
    }

    #[test]
    fn light_items_fill_hd7970() {
        let dev = amd_hd7970();
        let w = workload(4096);
        // 256 light work-items: registers allow many resident groups.
        let c = KernelConfig::new(64, 4, 1, 2).unwrap();
        let occ = Occupancy::compute(&dev, &w, &c, 100_000);
        assert_eq!(occ.waves_per_wg, 4);
        assert!(occ.wg_per_cu_limit >= 8, "limit {}", occ.wg_per_cu_limit);
        assert!(occ.active_waves >= 32.0);
        assert!(occ.hiding(&dev, &c) == 1.0);
    }

    #[test]
    fn heavy_items_reduce_hd7970_occupancy() {
        let dev = amd_hd7970();
        let w = workload(4096);
        let heavy = KernelConfig::new(64, 4, 25, 4).unwrap(); // 100 acc regs
        let occ = Occupancy::compute(&dev, &w, &heavy, 100_000);
        assert_eq!(occ.limited_by, OccupancyLimit::Registers);
        let light = KernelConfig::new(64, 4, 1, 2).unwrap();
        let occ_light = Occupancy::compute(&dev, &w, &light, 100_000);
        assert!(occ.active_waves < occ_light.active_waves);
    }

    #[test]
    fn ilp_partially_compensates_on_k20() {
        // K20's big register budget: heavy items lose waves but gain ILP;
        // hiding stays high — the paper's "fewer work-items than the
        // maximum, but with more work associated".
        let dev = nvidia_k20();
        let w = workload(4096);
        let heavy = KernelConfig::new(32, 8, 25, 4).unwrap();
        let occ = Occupancy::compute(&dev, &w, &heavy, 100_000);
        assert!(occ.active_waves < 44.0);
        assert!(occ.hiding(&dev, &heavy) > 0.6);
    }

    #[test]
    fn small_grids_underfill_the_device() {
        let dev = amd_hd7970();
        let w = workload(2);
        let c = KernelConfig::new(64, 2, 1, 1).unwrap();
        // Only 8 work-groups for 32 CUs.
        let occ = Occupancy::compute(&dev, &w, &c, 8);
        assert_eq!(occ.limited_by, OccupancyLimit::GridSize);
        assert!(occ.wg_per_cu_actual < 1.0);
        assert!(occ.hiding(&dev, &c) < 0.5);
    }

    #[test]
    fn simd_rounding() {
        let dev = amd_hd7970(); // wavefront 64
        let w = workload(256);
        let ragged = KernelConfig::new(40, 2, 1, 1).unwrap(); // 80 items
        let occ = Occupancy::compute(&dev, &w, &ragged, 100_000);
        assert_eq!(occ.waves_per_wg, 2);
        assert!((occ.simd_efficiency - 80.0 / 128.0).abs() < 1e-12);
        let full = KernelConfig::new(64, 2, 1, 1).unwrap();
        let occ_full = Occupancy::compute(&dev, &w, &full, 100_000);
        assert_eq!(occ_full.simd_efficiency, 1.0);
    }

    #[test]
    fn local_memory_can_be_the_binder() {
        let dev = amd_hd7970();
        // A wide LOFAR-like gradient makes staging buffers huge.
        let w = Workload::analytic(
            "LOFAR",
            &FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap(),
            &DmGrid::paper_grid(64).unwrap(),
            200_000,
        )
        .unwrap();
        let c = KernelConfig::new(128, 2, 8, 1).unwrap(); // tile 1024 x 2
        let occ = Occupancy::compute(&dev, &w, &c, 100_000);
        assert_eq!(occ.limited_by, OccupancyLimit::LocalMemory);
    }
}
