//! The five accelerators of the paper's Table I.
//!
//! The first block of each descriptor (compute elements, peak GFLOP/s,
//! peak GB/s) is copied verbatim from Table I. The microarchitectural
//! block (SIMD width, work-group and register limits, local memory,
//! cache line) comes from the vendors' published specifications for each
//! chip. The final block holds the *model calibration factors* — the
//! quantities a measurement on real hardware would determine — chosen
//! once so that the model's performance plateaus land near the paper's
//! Figures 6 and 7, and then held fixed for every experiment.

use crate::device::{DeviceDescriptor, Vendor};

/// AMD Radeon HD7970 (GCN "Tahiti"): 32 CUs × 64 lanes; the paper's
/// fastest device in both observational setups, thanks to its high
/// memory bandwidth and well-balanced occupancy limits.
pub fn amd_hd7970() -> DeviceDescriptor {
    DeviceDescriptor {
        name: "AMD HD7970".into(),
        vendor: Vendor::Amd,
        compute_units: 32,
        elems_per_cu: 64,
        peak_gflops: 3788.0,
        peak_bandwidth_gbs: 264.0,
        simd_width: 64,
        // The HD7970's OpenCL runtime caps work-groups at 256 work-items —
        // the hardware limit the paper observes in Figures 2-3.
        max_wg_size: 256,
        regfile_per_cu: 65536,
        max_regs_per_item: 128,
        // GCN: 64 KiB of LDS per CU, at most 32 KiB per work-group.
        local_mem_per_cu: 65536,
        max_local_per_wg: 32768,
        cache_line_bytes: 64,
        max_wg_per_cu: 16,
        max_waves_per_cu: 40,
        launch_overhead_us: 8.0,
        // GCN issues one VALU op per lane per cycle plus scalar address
        // arithmetic handled by the scalar unit: low per-flop overhead.
        instr_per_flop: 4.4,
        compute_efficiency: 0.82,
        bandwidth_efficiency: 0.92,
        ilp_hiding: 0.25,
        // GCN's scalar unit handles address arithmetic: unrolling buys
        // nothing, so the tuner keeps HD7970 work-items light.
        unroll_amortization: 0.0,
        waves_saturate: 24.0,
    }
}

/// Intel Xeon Phi 5110P: 60 in-order cores with 512-bit vectors and
/// 4-way hardware threading. The paper attributes its poor showing to
/// the immaturity of Intel's OpenCL stack for MIC (Sections V-D and
/// VII); the two efficiency factors below encode exactly that.
pub fn intel_xeon_phi_5110p() -> DeviceDescriptor {
    DeviceDescriptor {
        name: "Intel Xeon Phi 5110P".into(),
        vendor: Vendor::Intel,
        compute_units: 60,
        elems_per_cu: 2,
        peak_gflops: 2022.0,
        peak_bandwidth_gbs: 320.0,
        simd_width: 16,
        max_wg_size: 8192,
        // A CPU-like core: the "register file" is effectively the L1
        // working set; model it as roomy so occupancy is governed by the
        // 4 hardware threads instead.
        regfile_per_cu: 1 << 20,
        max_regs_per_item: 64,
        // Local memory is emulated in cache on MIC.
        local_mem_per_cu: 32768,
        max_local_per_wg: 32768,
        cache_line_bytes: 64,
        max_wg_per_cu: 4,
        max_waves_per_cu: 4,
        // OpenCL kernel dispatch on the Phi traverses the host runtime:
        // an order of magnitude costlier than a GPU launch.
        launch_overhead_us: 60.0,
        instr_per_flop: 4.5,
        // Immature OpenCL code generation for MIC (paper, Section VII).
        compute_efficiency: 0.163,
        // The OpenCL runtime reaches only a fraction of the card's GDDR5
        // bandwidth (paper: "we hope that dedispersion will be able to
        // benefit from the high memory bandwidth of this accelerator").
        bandwidth_efficiency: 0.35,
        ilp_hiding: 0.40,
        unroll_amortization: 0.008,
        waves_saturate: 4.0,
    }
}

/// NVIDIA GTX 680 (GK104 "Kepler"): 8 SMX × 192 cores. Its 63-register
/// per-thread ceiling forces the tuner toward many light work-items —
/// the 1,024-work-item optimum of Figures 2-3.
pub fn nvidia_gtx680() -> DeviceDescriptor {
    DeviceDescriptor {
        name: "NVIDIA GTX 680".into(),
        vendor: Vendor::Nvidia,
        compute_units: 8,
        elems_per_cu: 192,
        peak_gflops: 3090.0,
        peak_bandwidth_gbs: 192.0,
        simd_width: 32,
        max_wg_size: 1024,
        regfile_per_cu: 65536,
        // GK104 architectural limit; GK110 raised it to 255.
        max_regs_per_item: 63,
        local_mem_per_cu: 49152,
        max_local_per_wg: 49152,
        cache_line_bytes: 128,
        max_wg_per_cu: 16,
        max_waves_per_cu: 64,
        launch_overhead_us: 6.0,
        instr_per_flop: 4.0,
        // Kepler needs compiler-scheduled ILP to dual-issue; integer
        // address arithmetic competes with the FP pipes.
        compute_efficiency: 0.287,
        bandwidth_efficiency: 0.82,
        ilp_hiding: 0.30,
        // Kepler needs compiler-unrolled ILP; GK104's 63-register cap
        // bounds how far the tuner can push it.
        unroll_amortization: 0.012,
        waves_saturate: 44.0,
    }
}

/// NVIDIA K20 (GK110): 13 SMX × 192 cores, 255 registers per thread.
/// The paper calls it "a poor match for a memory-bound algorithm ...
/// because it does not have enough memory bandwidth to feed its compute
/// elements" (Section V-D).
pub fn nvidia_k20() -> DeviceDescriptor {
    DeviceDescriptor {
        name: "NVIDIA K20".into(),
        vendor: Vendor::Nvidia,
        compute_units: 13,
        elems_per_cu: 192,
        peak_gflops: 3519.0,
        peak_bandwidth_gbs: 208.0,
        simd_width: 32,
        max_wg_size: 1024,
        regfile_per_cu: 65536,
        max_regs_per_item: 255,
        local_mem_per_cu: 49152,
        max_local_per_wg: 49152,
        cache_line_bytes: 128,
        max_wg_per_cu: 16,
        max_waves_per_cu: 64,
        launch_overhead_us: 6.0,
        instr_per_flop: 4.0,
        compute_efficiency: 0.24,
        bandwidth_efficiency: 0.82,
        ilp_hiding: 0.35,
        // GK110: 255 registers per thread reward deep unrolling — the
        // paper's 25x4 register optimum on Apertif.
        unroll_amortization: 0.012,
        waves_saturate: 44.0,
    }
}

/// NVIDIA GTX Titan (GK110): 14 SMX × 192 cores; the same silicon as the
/// K20 with higher clocks and more bandwidth — on LOFAR (bandwidth-bound)
/// it joins the HD7970 at the top of Figure 7.
pub fn nvidia_gtx_titan() -> DeviceDescriptor {
    DeviceDescriptor {
        name: "NVIDIA GTX Titan".into(),
        vendor: Vendor::Nvidia,
        compute_units: 14,
        elems_per_cu: 192,
        peak_gflops: 4500.0,
        peak_bandwidth_gbs: 288.0,
        simd_width: 32,
        max_wg_size: 1024,
        regfile_per_cu: 65536,
        max_regs_per_item: 255,
        local_mem_per_cu: 49152,
        max_local_per_wg: 49152,
        cache_line_bytes: 128,
        max_wg_per_cu: 16,
        max_waves_per_cu: 64,
        launch_overhead_us: 6.0,
        instr_per_flop: 4.0,
        compute_efficiency: 0.23,
        bandwidth_efficiency: 0.82,
        ilp_hiding: 0.35,
        unroll_amortization: 0.012,
        waves_saturate: 44.0,
    }
}

/// All five Table I devices, in the paper's listing order.
pub fn all_devices() -> Vec<DeviceDescriptor> {
    vec![
        amd_hd7970(),
        intel_xeon_phi_5110p(),
        nvidia_gtx680(),
        nvidia_k20(),
        nvidia_gtx_titan(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_values() {
        // Compute elements, GFLOP/s and GB/s as printed in Table I.
        let cases = [
            (amd_hd7970(), 64 * 32, 3788.0, 264.0),
            (intel_xeon_phi_5110p(), 2 * 60, 2022.0, 320.0),
            (nvidia_gtx680(), 192 * 8, 3090.0, 192.0),
            (nvidia_k20(), 192 * 13, 3519.0, 208.0),
            (nvidia_gtx_titan(), 192 * 14, 4500.0, 288.0),
        ];
        for (dev, ces, gf, bw) in cases {
            assert_eq!(dev.compute_elements(), ces, "{}", dev.name);
            assert_eq!(dev.peak_gflops, gf, "{}", dev.name);
            assert_eq!(dev.peak_bandwidth_gbs, bw, "{}", dev.name);
        }
    }

    #[test]
    fn five_devices_in_order() {
        let names: Vec<String> = all_devices().into_iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            [
                "AMD HD7970",
                "Intel Xeon Phi 5110P",
                "NVIDIA GTX 680",
                "NVIDIA K20",
                "NVIDIA GTX Titan"
            ]
        );
    }

    #[test]
    fn hd7970_wg_limit_is_hardware_fact() {
        // Figures 2-3: "The HD7970 maintains its optimum at 256
        // work-items per work-group, its hardware limit".
        assert_eq!(amd_hd7970().max_wg_size, 256);
        assert_eq!(nvidia_gtx680().max_wg_size, 1024);
    }

    #[test]
    fn gk104_register_ceiling_below_gk110() {
        assert!(nvidia_gtx680().max_regs_per_item < nvidia_k20().max_regs_per_item);
        assert_eq!(nvidia_k20().max_regs_per_item, 255);
    }

    #[test]
    fn phi_efficiencies_reflect_immature_runtime() {
        let phi = intel_xeon_phi_5110p();
        for gpu in [
            amd_hd7970(),
            nvidia_gtx680(),
            nvidia_k20(),
            nvidia_gtx_titan(),
        ] {
            assert!(phi.compute_efficiency < gpu.compute_efficiency);
            assert!(phi.bandwidth_efficiency < gpu.bandwidth_efficiency);
        }
    }

    #[test]
    fn all_sanity_bounds() {
        for d in all_devices() {
            assert!(d.compute_units > 0);
            assert!(d.peak_gflops > 0.0 && d.peak_bandwidth_gbs > 0.0);
            assert!(d.simd_width.is_power_of_two());
            assert!(d.max_wg_size >= d.simd_width);
            assert!((0.0..=1.0).contains(&d.compute_efficiency));
            assert!((0.0..=1.0).contains(&d.bandwidth_efficiency));
            assert!(d.waves_saturate as u32 <= d.max_waves_per_cu);
            assert!(d.cache_line_bytes % 4 == 0);
        }
    }
}
