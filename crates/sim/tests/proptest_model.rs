//! Property-based tests of the analytic device model: physical
//! invariants that must hold for every device, workload, and meaningful
//! configuration.

use dedisp_core::{DmGrid, FrequencyBand, KernelConfig};
use manycore_sim::{all_devices, check_config, CostModel, Occupancy, TrafficEstimate, Workload};
use proptest::prelude::*;

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        100.0f64..1800.0, // low MHz
        0.1f64..1.0,      // channel width
        8usize..256,      // channels
        prop::sample::select(vec![1_000u32, 5_000, 20_000, 200_000]),
        prop::sample::select(vec![2usize, 8, 32, 128, 1024, 4096]),
    )
        .prop_map(|(low, width, channels, rate, trials)| {
            Workload::analytic(
                "prop",
                &FrequencyBand::new(low, width, channels).expect("valid band"),
                &DmGrid::paper_grid(trials).expect("valid grid"),
                rate,
            )
            .expect("valid workload")
        })
}

fn arb_config() -> impl Strategy<Value = KernelConfig> {
    (
        prop::sample::select(vec![
            2u32, 4, 8, 16, 25, 32, 64, 100, 128, 250, 256, 512, 1024,
        ]),
        prop::sample::select(vec![1u32, 2, 4, 8, 16, 32]),
        prop::sample::select(vec![1u32, 2, 4, 5, 8, 16, 25, 32]),
        prop::sample::select(vec![1u32, 2, 4, 8]),
    )
        .prop_map(|(wt, wd, et, ed)| KernelConfig::new(wt, wd, et, ed).expect("non-zero"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn estimates_are_finite_positive_and_consistent(
        w in arb_workload(),
        c in arb_config(),
        dev_idx in 0usize..5,
    ) {
        let dev = all_devices().swap_remove(dev_idx);
        prop_assume!(check_config(&dev, &w, &c).is_ok());
        let model = CostModel::new(dev);
        let e = model.evaluate(&w, &c).unwrap();
        prop_assert!(e.time_s.is_finite() && e.time_s > 0.0);
        prop_assert!(e.gflops.is_finite() && e.gflops > 0.0);
        prop_assert!(e.mem_time_s > 0.0 && e.compute_time_s > 0.0);
        prop_assert!(e.utilization > 0.0 && e.utilization <= 1.0);
        prop_assert!(e.achieved_ai > 0.0);
        // GFLOP/s metric is definitionally useful_flop / time.
        let expect = w.useful_flop as f64 / e.time_s / 1e9;
        prop_assert!((e.gflops - expect).abs() / expect < 1e-9);
        // The physical ceiling: never faster than the roofline with
        // perfect reuse and zero overheads.
        prop_assert!(e.gflops < model.device().peak_gflops);
    }

    #[test]
    fn evaluation_is_deterministic(
        w in arb_workload(),
        c in arb_config(),
        dev_idx in 0usize..5,
    ) {
        let dev = all_devices().swap_remove(dev_idx);
        prop_assume!(check_config(&dev, &w, &c).is_ok());
        let model = CostModel::new(dev);
        let a = model.evaluate(&w, &c).unwrap();
        let b = model.evaluate(&w, &c).unwrap();
        prop_assert_eq!(a.time_s, b.time_s);
        prop_assert_eq!(a.gflops, b.gflops);
    }

    #[test]
    fn traffic_covers_at_least_the_output(
        w in arb_workload(),
        c in arb_config(),
        dev_idx in 0usize..5,
    ) {
        let dev = all_devices().swap_remove(dev_idx);
        prop_assume!(check_config(&dev, &w, &c).is_ok());
        let t = TrafficEstimate::estimate(&dev, &w, &c);
        let useful_out = (w.trials * w.out_samples * 4) as f64;
        prop_assert!(t.write_bytes >= useful_out - 1.0);
        // Reads are never below one line-rounded pass over the samples
        // each work-group column touches... at minimum the output count
        // of elements must be read across channels once per reuse tile.
        prop_assert!(t.read_bytes > 0.0);
        prop_assert!(t.computed_flop >= w.useful_flop as f64);
        // Zero-DM (perfect reuse) never increases traffic.
        let z = TrafficEstimate::estimate(&dev, &w.zero_dm(), &c);
        prop_assert!(z.read_bytes <= t.read_bytes + 1.0);
    }

    #[test]
    fn occupancy_within_device_limits(
        w in arb_workload(),
        c in arb_config(),
        dev_idx in 0usize..5,
    ) {
        let dev = all_devices().swap_remove(dev_idx);
        prop_assume!(check_config(&dev, &w, &c).is_ok());
        let (nt, nd) = c.grid(w.out_samples, w.trials);
        let occ = Occupancy::compute(&dev, &w, &c, (nt * nd) as u64);
        prop_assert!(occ.waves_per_wg >= 1);
        prop_assert!(occ.wg_per_cu_limit >= 1);
        prop_assert!(occ.wg_per_cu_actual <= f64::from(occ.wg_per_cu_limit));
        prop_assert!(occ.active_waves <= f64::from(dev.max_waves_per_cu) + 1e-9);
        prop_assert!(occ.simd_efficiency > 0.0 && occ.simd_efficiency <= 1.0);
        let h = occ.hiding(&dev, &c);
        prop_assert!(h > 0.0 && h <= 1.0);
    }

    #[test]
    fn more_trials_never_reduce_total_flop_rate_potential(
        w in arb_workload(),
        dev_idx in 0usize..5,
    ) {
        // Growing the instance can only grow the amount of exploitable
        // parallelism: the best simple configuration's utilization is
        // monotone (weakly) in the grid size.
        let dev = all_devices().swap_remove(dev_idx);
        let c = KernelConfig::new(dev.simd_width.min(dev.max_wg_size), 1, 2, 1).unwrap();
        prop_assume!(check_config(&dev, &w, &c).is_ok());
        let mut big = w.clone();
        big.trials *= 2;
        big.useful_flop *= 2;
        let (nt, nd) = c.grid(w.out_samples, w.trials);
        let (bt, bd) = c.grid(big.out_samples, big.trials);
        let occ_small = Occupancy::compute(&dev, &w, &c, (nt * nd) as u64);
        let occ_big = Occupancy::compute(&dev, &big, &c, (bt * bd) as u64);
        prop_assert!(occ_big.active_waves >= occ_small.active_waves - 1e-9);
    }

    #[test]
    fn violations_are_stable_under_repeat(
        w in arb_workload(),
        c in arb_config(),
        dev_idx in 0usize..5,
    ) {
        let dev = all_devices().swap_remove(dev_idx);
        let first = check_config(&dev, &w, &c);
        let second = check_config(&dev, &w, &c);
        prop_assert_eq!(first, second);
    }
}
