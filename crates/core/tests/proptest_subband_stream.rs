//! Property-based tests for the extension modules: the two-stage
//! subband kernel's error bound and the streaming window's equivalence
//! to offline slicing.

use dedisp_core::prelude::*;
use proptest::prelude::*;

fn arb_plan() -> impl Strategy<Value = DedispersionPlan> {
    (
        100.0f64..400.0, // low band => meaningful delays
        0.1f64..0.6,
        prop::sample::select(vec![8usize, 16, 24, 32]),
        100u32..400,
        2usize..16,
    )
        .prop_map(|(low, width, channels, rate, trials)| {
            DedispersionPlan::builder()
                .band(FrequencyBand::new(low, width, channels).expect("valid band"))
                .dm_grid(DmGrid::new(0.0, 0.5, trials).expect("valid grid"))
                .sample_rate(rate)
                .allocation_limit(64 << 20)
                .build()
                .expect("plan fits")
        })
        .prop_filter("bounded", |p| p.in_samples() * p.channels() < 400_000)
}

fn fill(plan: &DedispersionPlan, seed: u64) -> InputBuffer {
    let mut buf = InputBuffer::for_plan(plan);
    let samples = buf.samples();
    for ch in 0..buf.channels() {
        for (s, v) in buf.channel_mut(ch).iter_mut().enumerate() {
            let mut x = seed ^ ((ch * samples + s) as u64);
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(27);
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            *v = ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        }
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn subband_conserves_total_flux(
        plan in arb_plan(),
        subbands in prop::sample::select(vec![1usize, 2, 4, 8]),
        stride in 1usize..6,
    ) {
        prop_assume!(plan.channels() % subbands == 0);
        // A constant input dedisperses to channels x value through any
        // correct shifting scheme: no sample is lost or double counted.
        let input = InputBuffer::constant(&plan, 0.5);
        let kernel = SubbandKernel::new(SubbandConfig::new(subbands, stride).unwrap());
        let mut out = OutputBuffer::for_plan(&plan);
        kernel.dedisperse(&plan, &input, &mut out).unwrap();
        let expected = 0.5 * plan.channels() as f32;
        for &v in out.as_slice() {
            prop_assert!((v - expected).abs() < 1e-3, "{v} != {expected}");
        }
    }

    #[test]
    fn subband_exact_when_unstrided_single_channel_bands(
        plan in arb_plan(),
        seed in any::<u64>(),
    ) {
        // One channel per subband + stride 1 degenerates to brute force.
        let input = fill(&plan, seed);
        let kernel = SubbandKernel::new(SubbandConfig::new(plan.channels(), 1).unwrap());
        prop_assert_eq!(kernel.max_smear_samples(&plan), 0);
        let mut out = OutputBuffer::for_plan(&plan);
        kernel.dedisperse(&plan, &input, &mut out).unwrap();
        let reference = dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        prop_assert!(out.max_abs_diff(&reference) < 1e-3);
    }

    #[test]
    fn subband_smear_monotone_in_stride(
        plan in arb_plan(),
        subbands in prop::sample::select(vec![2usize, 4, 8]),
    ) {
        prop_assume!(plan.channels() % subbands == 0);
        let mut last = 0;
        for stride in [1usize, 2, 4] {
            let k = SubbandKernel::new(SubbandConfig::new(subbands, stride).unwrap());
            let smear = k.max_smear_samples(&plan);
            prop_assert!(smear >= last, "stride {stride}: {smear} < {last}");
            last = smear;
        }
    }

    #[test]
    fn stream_window_equals_offline(
        plan in arb_plan(),
        seed in any::<u64>(),
        seconds in 2usize..5,
    ) {
        let s = plan.out_samples();
        let total = s * seconds + plan.delays().max_delay();
        // One long continuous stream per channel.
        let signal: Vec<Vec<f32>> = (0..plan.channels())
            .map(|ch| {
                (0..total)
                    .map(|i| {
                        let mut x = seed ^ ((ch * total + i) as u64);
                        x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93).rotate_left(23);
                        (x >> 40) as f32 / (1u64 << 24) as f32
                    })
                    .collect()
            })
            .collect();

        let mut window = StreamWindow::for_plan(&plan);
        for second in 0..seconds {
            let blocks: Vec<&[f32]> = signal
                .iter()
                .map(|chan| &chan[second * s..(second + 1) * s])
                .collect();
            window.push_second(&blocks).unwrap();
        }
        prop_assume!(window.warmed_up());

        let streamed = dedisp_core::kernel::dedisperse(&plan, window.window()).unwrap();

        let start = seconds * s - plan.in_samples();
        let mut offline_in = InputBuffer::for_plan(&plan);
        for (ch, chan) in signal.iter().enumerate().take(plan.channels()) {
            offline_in
                .channel_mut(ch)
                .copy_from_slice(&chan[start..start + plan.in_samples()]);
        }
        let offline = dedisp_core::kernel::dedisperse(&plan, &offline_in).unwrap();
        prop_assert_eq!(streamed.max_abs_diff(&offline), 0.0);
    }
}
