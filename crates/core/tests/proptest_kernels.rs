//! Property-based tests: every kernel implementation is exactly
//! equivalent to the sequential reference (Algorithm 1) for arbitrary
//! plans, inputs, and tile configurations.

use dedisp_core::prelude::*;
use proptest::prelude::*;

/// A small but non-degenerate plan drawn from arbitrary band shapes,
/// sampling rates and trial grids.
fn arb_plan() -> impl Strategy<Value = DedispersionPlan> {
    (
        50.0f64..2000.0, // low frequency, MHz
        0.05f64..2.0,    // channel width, MHz
        2usize..48,      // channels
        50u32..400,      // sample rate
        1usize..24,      // trials
        0.05f64..2.0,    // dm step
    )
        .prop_map(|(low, width, channels, rate, trials, step)| {
            DedispersionPlan::builder()
                .band(FrequencyBand::new(low, width, channels).expect("valid band"))
                .dm_grid(DmGrid::new(0.0, step, trials).expect("valid grid"))
                .sample_rate(rate)
                .allocation_limit(64 << 20)
                .build()
                .expect("plan within limits")
        })
        .prop_filter("keep inputs small", |p| {
            p.in_samples() * p.channels() < 400_000
        })
}

/// Pseudo-random input derived deterministically from a seed.
fn fill_input(plan: &DedispersionPlan, seed: u64) -> InputBuffer {
    let mut buf = InputBuffer::for_plan(plan);
    let samples = buf.samples();
    for ch in 0..buf.channels() {
        let row = buf.channel_mut(ch);
        for (s, v) in row.iter_mut().enumerate() {
            let mut x = seed ^ ((ch * samples + s) as u64);
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            *v = ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        }
    }
    buf
}

/// A tile configuration that fits the given plan.
fn arb_config_for(samples: usize, trials: usize) -> impl Strategy<Value = KernelConfig> {
    (1u32..=64, 1u32..=8, 1u32..=8, 1u32..=4).prop_map(move |(wt, wd, et, ed)| {
        let mut c = KernelConfig::new(wt, wd, et, ed).expect("non-zero");
        // Shrink the tile until it fits the problem.
        while (c.tile_time() as usize) > samples || (c.tile_dm() as usize) > trials {
            let wt = (c.wi_time() / 2).max(1);
            let wd = (c.wi_dm() / 2).max(1);
            let et = (c.el_time() / 2).max(1);
            let ed = (c.el_dm() / 2).max(1);
            let next = KernelConfig::new(wt, wd, et, ed).expect("non-zero");
            if next == c {
                break;
            }
            c = next;
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tiled_kernel_equals_reference(
        (plan, seed) in arb_plan().prop_flat_map(|p| (Just(p), any::<u64>())),
        raw_config in (1u32..=64, 1u32..=8, 1u32..=8, 1u32..=4),
    ) {
        let input = fill_input(&plan, seed);
        let mut reference = OutputBuffer::for_plan(&plan);
        NaiveKernel.dedisperse(&plan, &input, &mut reference).unwrap();

        let config = {
            let (wt, wd, et, ed) = raw_config;
            let mut c = KernelConfig::new(wt, wd, et, ed).unwrap();
            while (c.tile_time() as usize) > plan.out_samples()
                || (c.tile_dm() as usize) > plan.trials()
            {
                let next = KernelConfig::new(
                    (c.wi_time() / 2).max(1),
                    (c.wi_dm() / 2).max(1),
                    (c.el_time() / 2).max(1),
                    (c.el_dm() / 2).max(1),
                )
                .unwrap();
                if next == c { break; }
                c = next;
            }
            c
        };
        prop_assume!(config.validate_for(plan.out_samples(), plan.trials()).is_ok());

        let mut tiled = OutputBuffer::for_plan(&plan);
        TiledKernel::new(config).dedisperse(&plan, &input, &mut tiled).unwrap();
        prop_assert_eq!(tiled.max_abs_diff(&reference), 0.0);

        let mut parallel = OutputBuffer::for_plan(&plan);
        ParallelKernel::new(config).dedisperse(&plan, &input, &mut parallel).unwrap();
        prop_assert_eq!(parallel.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn delay_table_is_monotone(
        plan in arb_plan(),
    ) {
        let t = plan.delays();
        // Non-decreasing in trial DM for every channel.
        for ch in 0..t.channels() {
            for trial in 1..t.trials() {
                prop_assert!(t.delay(trial, ch) >= t.delay(trial - 1, ch));
            }
        }
        // Non-increasing in channel (higher frequency) for every trial.
        for trial in 0..t.trials() {
            for ch in 1..t.channels() {
                prop_assert!(t.delay(trial, ch) <= t.delay(trial, ch - 1));
            }
        }
        // The input shape always covers the worst-case delay.
        prop_assert_eq!(plan.in_samples(), plan.out_samples() + t.max_delay());
    }

    #[test]
    fn constant_input_dedisperses_to_channel_sum(
        plan in arb_plan(),
        value in -8.0f32..8.0,
    ) {
        let input = InputBuffer::constant(&plan, value);
        let out = dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        let expected = value * plan.channels() as f32;
        let tol = plan.channels() as f32 * 1e-4;
        for &v in out.as_slice() {
            prop_assert!((v - expected).abs() <= tol, "{v} != {expected}");
        }
    }

    #[test]
    fn ai_respects_eq2_without_reuse(plan in arb_plan()) {
        let ai = ArithmeticIntensity::for_execution(&plan, &KernelConfig::scalar());
        prop_assert!(ai.flop_per_byte() < ArithmeticIntensity::NO_REUSE_BOUND);
        prop_assert!((ai.reuse_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_factor_bounded_by_tile_dm(
        (plan, config) in arb_plan().prop_flat_map(|p| {
            let (s, d) = (p.out_samples(), p.trials());
            (Just(p), arb_config_for(s, d))
        }),
    ) {
        prop_assume!(config.validate_for(plan.out_samples(), plan.trials()).is_ok());
        let ai = ArithmeticIntensity::for_execution(&plan, &config);
        // Staged reuse can never exceed the DM-tile height. It CAN drop
        // below 1: when the delay spread across a tile's trials exceeds
        // the tile width, staging the whole span reads more than the
        // no-reuse kernel would — the reason the tuner abandons wide DM
        // tiles in reuse-hostile setups like LOFAR (paper, Section V-A).
        prop_assert!(ai.reuse_factor() <= f64::from(config.tile_dm()) + 1e-9);
        prop_assert!(ai.reuse_factor() > 0.0);
    }

    #[test]
    fn codegen_always_compilesish(
        (plan, config) in arb_plan().prop_flat_map(|p| {
            let (s, d) = (p.out_samples(), p.trials());
            (Just(p), arb_config_for(s, d))
        }),
    ) {
        prop_assume!(config.validate_for(plan.out_samples(), plan.trials()).is_ok());
        let src = dedisp_core::codegen::generate_opencl(&plan, &config).unwrap();
        // Structural sanity: balanced braces, one accumulator and one
        // output write per element.
        let opens = src.matches('{').count();
        let closes = src.matches('}').count();
        prop_assert_eq!(opens, closes);
        let elems = (config.el_time() * config.el_dm()) as usize;
        prop_assert_eq!(src.matches("float acc_").count(), elems);
        prop_assert_eq!(src.matches("output[(dm0 + ").count(), elems);
    }
}
