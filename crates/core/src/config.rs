//! The four user-controlled kernel parameters (paper, Section III-B).
//!
//! The parallel dedispersion kernel assigns each work-item a (DM, time)
//! pair and groups work-items into two-dimensional work-groups. Its
//! structure is instantiated from four parameters:
//!
//! * `wi_time`, `wi_dm` — work-items per work-group along the time and DM
//!   dimensions, controlling the amount of available parallelism;
//! * `el_time`, `el_dm` — elements computed per work-item along each
//!   dimension, controlling the amount of work (and register pressure)
//!   per work-item.
//!
//! A work-group therefore computes a tile of `wi_dm·el_dm` trial DMs by
//! `wi_time·el_time` time samples, its work-items cooperating through
//! local memory to load each input element once per tile. The paper's
//! "registers per work-item" metric (Figures 4 and 5) is the number of
//! per-item accumulators, `el_time × el_dm`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{DedispError, Result};

/// A concrete instantiation of the four tunable kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelConfig {
    wi_time: u32,
    wi_dm: u32,
    el_time: u32,
    el_dm: u32,
}

impl KernelConfig {
    /// Creates a configuration; all four parameters must be non-zero.
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::InvalidParameter`] if any parameter is zero.
    pub fn new(wi_time: u32, wi_dm: u32, el_time: u32, el_dm: u32) -> Result<Self> {
        for (name, v) in [
            ("wi_time", wi_time),
            ("wi_dm", wi_dm),
            ("el_time", el_time),
            ("el_dm", el_dm),
        ] {
            if v == 0 {
                return Err(DedispError::invalid(name, "must be non-zero"));
            }
        }
        Ok(Self {
            wi_time,
            wi_dm,
            el_time,
            el_dm,
        })
    }

    /// The trivial configuration: one work-item computes one output
    /// element, work-groups of a single item. Always valid; the
    /// one-dimensional organization is a special case of the
    /// two-dimensional one (paper, Section III-B).
    pub fn scalar() -> Self {
        Self {
            wi_time: 1,
            wi_dm: 1,
            el_time: 1,
            el_dm: 1,
        }
    }

    /// Work-items per work-group along the time dimension.
    #[inline]
    pub fn wi_time(&self) -> u32 {
        self.wi_time
    }

    /// Work-items per work-group along the DM dimension.
    #[inline]
    pub fn wi_dm(&self) -> u32 {
        self.wi_dm
    }

    /// Elements computed per work-item along the time dimension.
    #[inline]
    pub fn el_time(&self) -> u32 {
        self.el_time
    }

    /// Elements computed per work-item along the DM dimension.
    #[inline]
    pub fn el_dm(&self) -> u32 {
        self.el_dm
    }

    /// Total work-items per work-group (the quantity plotted in the
    /// paper's Figures 2 and 3).
    #[inline]
    pub fn work_items(&self) -> u32 {
        self.wi_time * self.wi_dm
    }

    /// Per-work-item accumulator registers, `el_time × el_dm` (the
    /// quantity plotted in the paper's Figures 4 and 5).
    #[inline]
    pub fn registers_per_item(&self) -> u32 {
        self.el_time * self.el_dm
    }

    /// Time samples covered by one work-group's tile.
    #[inline]
    pub fn tile_time(&self) -> u32 {
        self.wi_time * self.el_time
    }

    /// Trial DMs covered by one work-group's tile.
    #[inline]
    pub fn tile_dm(&self) -> u32 {
        self.wi_dm * self.el_dm
    }

    /// Output elements computed by one work-group.
    #[inline]
    pub fn tile_elements(&self) -> u64 {
        u64::from(self.tile_time()) * u64::from(self.tile_dm())
    }

    /// Checks the configuration against a problem of `samples` output
    /// samples and `trials` trial DMs: a tile must not exceed the problem
    /// in either dimension (otherwise part of the work-group is idle by
    /// construction, which the paper excludes as not meaningful).
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::IncompatibleConfig`] on violation.
    pub fn validate_for(&self, samples: usize, trials: usize) -> Result<()> {
        if self.tile_time() as usize > samples {
            return Err(DedispError::incompatible(format!(
                "time tile of {} exceeds {} output samples",
                self.tile_time(),
                samples
            )));
        }
        if self.tile_dm() as usize > trials {
            return Err(DedispError::incompatible(format!(
                "DM tile of {} exceeds {} trials",
                self.tile_dm(),
                trials
            )));
        }
        Ok(())
    }

    /// Number of work-groups needed along (time, dm) for a problem of
    /// `samples` × `trials`, using ceiling division (partial tiles are
    /// clamped by the kernels).
    pub fn grid(&self, samples: usize, trials: usize) -> (usize, usize) {
        let t = samples.div_ceil(self.tile_time() as usize);
        let d = trials.div_ceil(self.tile_dm() as usize);
        (t, d)
    }
}

impl fmt::Display for KernelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wi={}x{} el={}x{}",
            self.wi_time, self.wi_dm, self.el_time, self.el_dm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        // The paper's GTX 680 Apertif optimum: 32×32 work-items.
        let c = KernelConfig::new(32, 32, 4, 1).unwrap();
        assert_eq!(c.work_items(), 1024);
        assert_eq!(c.tile_time(), 128);
        assert_eq!(c.tile_dm(), 32);
        assert_eq!(c.registers_per_item(), 4);
        assert_eq!(c.tile_elements(), 128 * 32);
    }

    #[test]
    fn lofar_gtx680_shape() {
        // The paper's GTX 680 LOFAR optimum: 250×4 work-items.
        let c = KernelConfig::new(250, 4, 1, 1).unwrap();
        assert_eq!(c.work_items(), 1000);
    }

    #[test]
    fn k20_register_heavy_shape() {
        // The paper's K20/Titan Apertif register optimum: 25×4 elements.
        let c = KernelConfig::new(16, 8, 25, 4).unwrap();
        assert_eq!(c.registers_per_item(), 100);
    }

    #[test]
    fn scalar_is_identity_tile() {
        let c = KernelConfig::scalar();
        assert_eq!(c.work_items(), 1);
        assert_eq!(c.tile_elements(), 1);
        assert_eq!(c.registers_per_item(), 1);
        c.validate_for(1, 1).unwrap();
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(KernelConfig::new(0, 1, 1, 1).is_err());
        assert!(KernelConfig::new(1, 0, 1, 1).is_err());
        assert!(KernelConfig::new(1, 1, 0, 1).is_err());
        assert!(KernelConfig::new(1, 1, 1, 0).is_err());
    }

    #[test]
    fn validate_tile_against_problem() {
        let c = KernelConfig::new(8, 4, 2, 2).unwrap(); // tile 16 x 8
        assert!(c.validate_for(16, 8).is_ok());
        assert!(c.validate_for(15, 8).is_err());
        assert!(c.validate_for(16, 7).is_err());
    }

    #[test]
    fn grid_uses_ceiling_division() {
        let c = KernelConfig::new(8, 4, 2, 2).unwrap(); // tile 16 x 8
        assert_eq!(c.grid(16, 8), (1, 1));
        assert_eq!(c.grid(17, 8), (2, 1));
        assert_eq!(c.grid(160, 64), (10, 8));
        assert_eq!(c.grid(161, 65), (11, 9));
    }

    #[test]
    fn display_format() {
        let c = KernelConfig::new(32, 2, 4, 8).unwrap();
        assert_eq!(c.to_string(), "wi=32x2 el=4x8");
    }
}
