//! Frequency bands and channelization.
//!
//! The dedispersion input is a *channelized* time-series: the observing
//! bandwidth is split into `c` contiguous frequency channels, each
//! delivered as its own sampled stream. The paper's two observational
//! setups differ strongly here — Apertif observes 300 MHz of bandwidth in
//! 1,024 channels near 1.4 GHz, LOFAR observes 6 MHz in 32 channels near
//! 140 MHz — and this difference drives the amount of exploitable
//! data-reuse (Section IV of the paper).

use serde::{Deserialize, Serialize};

use crate::error::{DedispError, Result};

/// A contiguous observing band divided into equal-width frequency channels.
///
/// Channel `0` is the *lowest* frequency channel. Delays are computed
/// relative to the top edge of the band (the highest frequency), matching
/// the convention of Eq. 1 in the paper where `f_h` is the highest
/// frequency of the signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyBand {
    low_mhz: f64,
    channel_width_mhz: f64,
    channels: usize,
}

impl FrequencyBand {
    /// Creates a band starting at `low_mhz` with `channels` channels of
    /// `channel_width_mhz` each.
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::InvalidParameter`] if the low frequency or
    /// channel width is not strictly positive and finite, or if the number
    /// of channels is zero.
    pub fn new(low_mhz: f64, channel_width_mhz: f64, channels: usize) -> Result<Self> {
        if !(low_mhz.is_finite() && low_mhz > 0.0) {
            return Err(DedispError::invalid(
                "low_mhz",
                format!("must be positive and finite, got {low_mhz}"),
            ));
        }
        if !(channel_width_mhz.is_finite() && channel_width_mhz > 0.0) {
            return Err(DedispError::invalid(
                "channel_width_mhz",
                format!("must be positive and finite, got {channel_width_mhz}"),
            ));
        }
        if channels == 0 {
            return Err(DedispError::invalid("channels", "must be non-zero"));
        }
        Ok(Self {
            low_mhz,
            channel_width_mhz,
            channels,
        })
    }

    /// Creates a band from its low and high edges.
    ///
    /// # Errors
    ///
    /// Returns an error if `high_mhz <= low_mhz` or `channels == 0`.
    pub fn from_edges(low_mhz: f64, high_mhz: f64, channels: usize) -> Result<Self> {
        if !(high_mhz.is_finite() && high_mhz > low_mhz) {
            return Err(DedispError::invalid(
                "high_mhz",
                format!("must exceed low_mhz ({low_mhz}), got {high_mhz}"),
            ));
        }
        if channels == 0 {
            return Err(DedispError::invalid("channels", "must be non-zero"));
        }
        Self::new(low_mhz, (high_mhz - low_mhz) / channels as f64, channels)
    }

    /// Number of frequency channels (`c` in the paper).
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Width of a single channel in MHz.
    #[inline]
    pub fn channel_width_mhz(&self) -> f64 {
        self.channel_width_mhz
    }

    /// The bottom edge of the band in MHz.
    #[inline]
    pub fn low_mhz(&self) -> f64 {
        self.low_mhz
    }

    /// The top edge of the band in MHz — `f_h` in Eq. 1.
    #[inline]
    pub fn high_mhz(&self) -> f64 {
        self.low_mhz + self.channel_width_mhz * self.channels as f64
    }

    /// Total bandwidth in MHz.
    #[inline]
    pub fn bandwidth_mhz(&self) -> f64 {
        self.channel_width_mhz * self.channels as f64
    }

    /// The representative frequency of channel `ch` (its bottom edge),
    /// i.e. the most pessimistic (largest-delay) frequency within the
    /// channel. Channel 0 is the lowest channel.
    ///
    /// # Panics
    ///
    /// Panics if `ch >= self.channels()`.
    #[inline]
    pub fn channel_mhz(&self, ch: usize) -> f64 {
        assert!(
            ch < self.channels,
            "channel index {ch} out of range ({} channels)",
            self.channels
        );
        self.low_mhz + self.channel_width_mhz * ch as f64
    }

    /// The center frequency of channel `ch` in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `ch >= self.channels()`.
    #[inline]
    pub fn channel_center_mhz(&self, ch: usize) -> f64 {
        self.channel_mhz(ch) + 0.5 * self.channel_width_mhz
    }

    /// Iterates over the representative (bottom-edge) frequencies of all
    /// channels, lowest first.
    pub fn channel_frequencies(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.channels).map(move |ch| self.channel_mhz(ch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apertif_like_band() {
        // The paper's Apertif setup: 1,420–1,720 MHz in 1,024 channels.
        let band = FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap();
        assert_eq!(band.channels(), 1024);
        assert!((band.channel_width_mhz() - 0.29296875).abs() < 1e-12);
        assert!((band.high_mhz() - 1720.0).abs() < 1e-9);
        assert!((band.bandwidth_mhz() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn lofar_like_band() {
        // The paper's LOFAR setup: 6 MHz above 138 MHz in 32 channels.
        let band = FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap();
        assert_eq!(band.channels(), 32);
        assert!((band.high_mhz() - 144.0).abs() < 1e-9);
    }

    #[test]
    fn channel_frequencies_ascending() {
        let band = FrequencyBand::new(100.0, 1.0, 8).unwrap();
        let freqs: Vec<f64> = band.channel_frequencies().collect();
        assert_eq!(freqs.len(), 8);
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
        assert!((freqs[0] - 100.0).abs() < 1e-12);
        assert!((freqs[7] - 107.0).abs() < 1e-12);
    }

    #[test]
    fn channel_center_is_half_width_up() {
        let band = FrequencyBand::new(100.0, 2.0, 4).unwrap();
        assert!((band.channel_center_mhz(0) - 101.0).abs() < 1e-12);
        assert!((band.channel_center_mhz(3) - 107.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(FrequencyBand::new(0.0, 1.0, 8).is_err());
        assert!(FrequencyBand::new(-5.0, 1.0, 8).is_err());
        assert!(FrequencyBand::new(100.0, 0.0, 8).is_err());
        assert!(FrequencyBand::new(100.0, -1.0, 8).is_err());
        assert!(FrequencyBand::new(100.0, 1.0, 0).is_err());
        assert!(FrequencyBand::new(f64::NAN, 1.0, 8).is_err());
        assert!(FrequencyBand::new(100.0, f64::INFINITY, 8).is_err());
        assert!(FrequencyBand::from_edges(200.0, 100.0, 8).is_err());
        assert!(FrequencyBand::from_edges(100.0, 100.0, 8).is_err());
        assert!(FrequencyBand::from_edges(100.0, 200.0, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_index_out_of_range_panics() {
        let band = FrequencyBand::new(100.0, 1.0, 8).unwrap();
        let _ = band.channel_mhz(8);
    }
}
