//! Arithmetic-intensity analysis (paper, Section III-A) and roofline
//! helpers.
//!
//! Dedispersion performs one floating-point accumulate per input element
//! loaded from global memory, so without data-reuse its arithmetic
//! intensity (AI, flop per byte of global traffic) is bounded by
//!
//! ```text
//! AI = 1 / (4 + ε) < 1/4                                        (Eq. 2)
//! ```
//!
//! where ε accounts for the delay table and the output writes. If a tile
//! of `d` trials × `s` samples × `c` channels reuses every input element
//! perfectly, the bound becomes
//!
//! ```text
//! AI < 1 / (4·(1/d + 1/s + 1/c))                                (Eq. 3)
//! ```
//!
//! which diverges — but the paper shows (analytically and empirically)
//! that realistic delay functions never expose enough reuse to approach
//! it, so dedispersion stays memory-bound on real hardware. The types
//! here compute both bounds, the *achieved* AI of a tiled execution, and
//! roofline-model attainable performance.

use serde::{Deserialize, Serialize};

use crate::config::KernelConfig;
use crate::plan::DedispersionPlan;

/// Arithmetic-intensity figures for a (plan, configuration) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArithmeticIntensity {
    /// Useful flop of the transform (`d·s·c`).
    pub flop: u64,
    /// Global-memory bytes read from the input, assuming each tile stages
    /// its shared span exactly once (element granularity; cache-line
    /// effects belong to the hardware model, not the algorithm).
    pub input_bytes: u64,
    /// Bytes written to the output (`d·s·4`).
    pub output_bytes: u64,
    /// Bytes read from the delay table (one `u32` per channel per DM-strip
    /// per work-group column).
    pub delay_bytes: u64,
}

impl ArithmeticIntensity {
    /// The AI upper bound without any data-reuse — Eq. 2 with ε = 0.
    pub const NO_REUSE_BOUND: f64 = 0.25;

    /// Eq. 3: the theoretical AI upper bound under perfect data-reuse for
    /// a problem of `d` trials, `s` samples and `c` channels.
    pub fn perfect_reuse_bound(d: usize, s: usize, c: usize) -> f64 {
        let inv = 1.0 / d as f64 + 1.0 / s as f64 + 1.0 / c as f64;
        1.0 / (4.0 * inv)
    }

    /// Computes the achieved AI of executing `plan` with `config`,
    /// counting each tile's staged input span once (the algorithmic
    /// data-reuse of Section III-B).
    pub fn for_execution(plan: &DedispersionPlan, config: &KernelConfig) -> Self {
        let delays = plan.delays();
        let channels = plan.channels();
        let out_samples = plan.out_samples();
        let trials = plan.trials();
        let tile_dm = config.tile_dm() as usize;
        let (n_time, _) = config.grid(out_samples, trials);

        let mut input_elems: u64 = 0;
        let mut delay_elems: u64 = 0;
        let mut trial_lo = 0;
        while trial_lo < trials {
            let trial_hi = (trial_lo + tile_dm).min(trials);
            for ch in 0..channels {
                let spread = (delays.delay(trial_hi - 1, ch) - delays.delay(trial_lo, ch)) as u64;
                // Every time tile stages `tt + spread` elements; summed
                // over the n_time tiles this is s + n_time·spread.
                input_elems += out_samples as u64 + n_time as u64 * spread;
                delay_elems += (trial_hi - trial_lo) as u64;
            }
            trial_lo = trial_hi;
        }

        Self {
            flop: plan.flop(),
            input_bytes: input_elems * 4,
            output_bytes: plan.output_bytes(),
            delay_bytes: delay_elems * 4 * n_time as u64,
        }
    }

    /// Total global traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.input_bytes + self.output_bytes + self.delay_bytes
    }

    /// Achieved arithmetic intensity in flop/byte.
    pub fn flop_per_byte(&self) -> f64 {
        self.flop as f64 / self.total_bytes() as f64
    }

    /// The input data-reuse factor: how many times each loaded input byte
    /// is used, relative to loading once per (trial, channel, sample).
    pub fn reuse_factor(&self) -> f64 {
        (self.flop * 4) as f64 / self.input_bytes as f64
    }
}

/// A two-parameter roofline model (Williams et al., CACM 2009 — the
/// paper's reference \[4\]) for placing dedispersion on a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_bandwidth_gbs: f64,
}

impl Roofline {
    /// Creates a roofline from device peaks.
    pub fn new(peak_gflops: f64, peak_bandwidth_gbs: f64) -> Self {
        Self {
            peak_gflops,
            peak_bandwidth_gbs,
        }
    }

    /// The ridge point: the AI (flop/byte) at which the device transitions
    /// from memory-bound to compute-bound.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_gflops / self.peak_bandwidth_gbs
    }

    /// Attainable GFLOP/s at arithmetic intensity `ai` (flop/byte).
    pub fn attainable_gflops(&self, ai: f64) -> f64 {
        (self.peak_bandwidth_gbs * ai).min(self.peak_gflops)
    }

    /// Whether a kernel with AI `ai` is memory-bound on this device.
    pub fn is_memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge_ai()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::DmGrid;
    use crate::freq::FrequencyBand;

    fn plan(trials: usize) -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::new(0.0, 0.5, trials).unwrap())
            .sample_rate(200)
            .build()
            .unwrap()
    }

    #[test]
    fn eq3_bound_diverges_with_problem_size() {
        let small = ArithmeticIntensity::perfect_reuse_bound(2, 2, 2);
        let large = ArithmeticIntensity::perfect_reuse_bound(4096, 20_000, 1024);
        assert!(small < large);
        assert!((small - 1.0 / 6.0).abs() < 1e-12);
        assert!(large > 190.0);
    }

    #[test]
    fn no_reuse_config_stays_below_quarter() {
        // A 1x1 tile has zero reuse: AI must obey Eq. 2.
        let p = plan(16);
        let ai = ArithmeticIntensity::for_execution(&p, &KernelConfig::scalar());
        assert!(
            ai.flop_per_byte() < ArithmeticIntensity::NO_REUSE_BOUND,
            "AI {} must be < 0.25",
            ai.flop_per_byte()
        );
        // Reuse factor is 1: every input element loaded once per use.
        assert!((ai.reuse_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dm_tiling_increases_ai() {
        let p = plan(16);
        let no_reuse = ArithmeticIntensity::for_execution(&p, &KernelConfig::scalar());
        let tiled = ArithmeticIntensity::for_execution(&p, &KernelConfig::new(8, 8, 1, 2).unwrap());
        assert!(tiled.flop_per_byte() > no_reuse.flop_per_byte());
        assert!(tiled.reuse_factor() > 2.0);
    }

    #[test]
    fn zero_dm_plan_reaches_full_tile_reuse() {
        let p = DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::paper_grid(16).unwrap())
            .sample_rate(200)
            .zero_dm(true)
            .build()
            .unwrap();
        let config = KernelConfig::new(8, 8, 1, 2).unwrap(); // tile_dm = 16
        let ai = ArithmeticIntensity::for_execution(&p, &config);
        // With zero delays, the spread is zero, so reuse equals tile_dm.
        assert!((ai.reuse_factor() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn real_delays_keep_reuse_below_tile_dm() {
        let p = plan(16);
        let config = KernelConfig::new(8, 8, 1, 2).unwrap(); // tile_dm = 16
        let ai = ArithmeticIntensity::for_execution(&p, &config);
        assert!(ai.reuse_factor() < 16.0);
        assert!(ai.reuse_factor() > 1.0);
    }

    #[test]
    fn flop_matches_plan() {
        let p = plan(8);
        let ai = ArithmeticIntensity::for_execution(&p, &KernelConfig::scalar());
        assert_eq!(ai.flop, p.flop());
        assert_eq!(ai.output_bytes, p.output_bytes());
    }

    #[test]
    fn roofline_ridge_and_attainable() {
        // HD7970: 3788 GFLOP/s, 264 GB/s → ridge ≈ 14.3 flop/byte.
        let r = Roofline::new(3788.0, 264.0);
        assert!((r.ridge_ai() - 14.348).abs() < 0.01);
        // Dedispersion without reuse (AI < 0.25) is deeply memory-bound.
        assert!(r.is_memory_bound(0.25));
        assert!((r.attainable_gflops(0.25) - 66.0).abs() < 0.01);
        // Above the ridge the roofline caps at peak.
        assert_eq!(r.attainable_gflops(100.0), 3788.0);
        assert!(!r.is_memory_bound(100.0));
    }

    #[test]
    fn paper_claim_memory_bound_on_all_devices() {
        // With realistic reuse (the paper measures factors well under the
        // ridge), dedispersion is memory-bound on every Table I device.
        let devices = [
            (3788.0, 264.0),
            (2022.0, 320.0),
            (3090.0, 192.0),
            (3519.0, 208.0),
            (4500.0, 288.0),
        ];
        let p = plan(64);
        let config = KernelConfig::new(8, 8, 2, 2).unwrap();
        let ai = ArithmeticIntensity::for_execution(&p, &config);
        for (gf, bw) in devices {
            assert!(Roofline::new(gf, bw).is_memory_bound(ai.flop_per_byte()));
        }
    }
}
