//! Dedispersion kernels.
//!
//! Three implementations of the same transform, all producing bitwise
//! identical results (they accumulate channels in the same order):
//!
//! * [`NaiveKernel`] — the sequential reference, a direct transcription of
//!   Algorithm 1 from the paper. The oracle for all other kernels.
//! * [`TiledKernel`] — the paper's many-core algorithm on one thread: the
//!   problem is decomposed into two-dimensional work-group tiles governed
//!   by a [`KernelConfig`](crate::KernelConfig); each tile stages input through an emulated
//!   local memory so that a sample shared by several trial DMs is read
//!   from global memory once per tile (the data-reuse of Section III-B).
//! * [`ParallelKernel`] — the tiled kernel with work-groups executed in
//!   parallel by a rayon thread pool; the host-side analog of launching
//!   the OpenCL kernel across compute units.
//!
//! [`SubbandKernel`] additionally provides the two-stage *approximate*
//! algorithm used by this paper's successor pipelines (an extension
//! beyond the paper's exact transform).

mod naive;
mod parallel;
pub mod subband;
mod tiled;

pub use naive::NaiveKernel;
pub use parallel::ParallelKernel;
pub use subband::{SubbandConfig, SubbandKernel};
pub use tiled::TiledKernel;

use crate::buffer::{InputBuffer, OutputBuffer};
use crate::error::Result;
use crate::plan::DedispersionPlan;

/// A dedispersion kernel: consumes a channelized time-series and produces
/// one dedispersed time-series per trial DM.
pub trait Dedisperser {
    /// A short, stable, human-readable implementation name.
    fn name(&self) -> &'static str;

    /// Dedisperses `input` into `output` according to `plan`.
    ///
    /// `output[trial][sample] = Σ_ch input[ch][sample + Δ(ch, trial)]`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if either buffer does not match the plan, or
    /// a configuration error if the kernel's configuration is incompatible
    /// with the plan.
    fn dedisperse(
        &self,
        plan: &DedispersionPlan,
        input: &InputBuffer,
        output: &mut OutputBuffer,
    ) -> Result<()>;
}

/// Convenience wrapper: dedisperses with the sequential reference kernel
/// into a freshly allocated output buffer.
///
/// # Errors
///
/// Returns a shape error if `input` does not match the plan.
pub fn dedisperse(plan: &DedispersionPlan, input: &InputBuffer) -> Result<OutputBuffer> {
    let mut out = OutputBuffer::for_plan(plan);
    NaiveKernel.dedisperse(plan, input, &mut out)?;
    Ok(out)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for kernel tests.

    use crate::dm::DmGrid;
    use crate::freq::FrequencyBand;
    use crate::plan::DedispersionPlan;
    use crate::InputBuffer;

    /// A small Apertif-flavored plan: 32 channels, 200 samples/s, `trials`
    /// trial DMs. Delays are small but non-zero across the band.
    pub fn small_plan(trials: usize) -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::new(0.0, 0.5, trials).unwrap())
            .sample_rate(200)
            .build()
            .unwrap()
    }

    /// Deterministic pseudo-random input: a cheap integer hash mapped to
    /// [0, 1). Reproducible without an RNG dependency.
    pub fn hash_input(plan: &DedispersionPlan) -> InputBuffer {
        let mut buf = InputBuffer::for_plan(plan);
        let samples = buf.samples();
        for ch in 0..buf.channels() {
            let row = buf.channel_mut(ch);
            for (s, v) in row.iter_mut().enumerate() {
                let mut x = (ch * samples + s) as u64;
                x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                *v = (x >> 40) as f32 / (1u64 << 24) as f32;
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{hash_input, small_plan};
    use super::*;

    #[test]
    fn free_function_matches_reference() {
        let plan = small_plan(8);
        let input = hash_input(&plan);
        let out = dedisperse(&plan, &input).unwrap();
        let mut expected = OutputBuffer::for_plan(&plan);
        NaiveKernel
            .dedisperse(&plan, &input, &mut expected)
            .unwrap();
        assert_eq!(out.max_abs_diff(&expected), 0.0);
    }
}
