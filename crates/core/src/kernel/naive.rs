//! The sequential reference kernel — Algorithm 1 of the paper.

use crate::buffer::{InputBuffer, OutputBuffer};
use crate::error::Result;
use crate::kernel::Dedisperser;
use crate::plan::DedispersionPlan;

/// Direct transcription of the paper's Algorithm 1: three nested loops
/// over trial DMs, output samples, and frequency channels. Complexity
/// `O(d·s·c)`; delays come from the plan's precomputed table.
///
/// This kernel is the correctness oracle for every other implementation
/// in this workspace: all kernels accumulate channels in ascending order,
/// so results are required to match it *bitwise*.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveKernel;

impl Dedisperser for NaiveKernel {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn dedisperse(
        &self,
        plan: &DedispersionPlan,
        input: &InputBuffer,
        output: &mut OutputBuffer,
    ) -> Result<()> {
        input.check_plan(plan)?;
        output.check_plan(plan)?;

        let channels = plan.channels();
        let out_samples = plan.out_samples();
        let delays = plan.delays();

        for trial in 0..plan.trials() {
            let row = delays.trial_row(trial);
            let series = output.series_mut(trial);
            for (sample, out) in series.iter_mut().enumerate().take(out_samples) {
                let mut acc = 0.0f32;
                for (ch, &shift) in row.iter().enumerate().take(channels) {
                    acc += input.channel(ch)[sample + shift as usize];
                }
                *out = acc;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::{hash_input, small_plan};

    #[test]
    fn constant_input_sums_to_channel_count() {
        let plan = small_plan(6);
        let input = InputBuffer::constant(&plan, 1.0);
        let mut out = OutputBuffer::for_plan(&plan);
        NaiveKernel.dedisperse(&plan, &input, &mut out).unwrap();
        let c = plan.channels() as f32;
        assert!(out.as_slice().iter().all(|&v| (v - c).abs() < 1e-4));
    }

    #[test]
    fn zero_dm_trial_is_plain_channel_sum() {
        // Trial 0 has DM = 0, so its dedispersed series is the direct
        // channel sum with no shifts.
        let plan = small_plan(4);
        let input = hash_input(&plan);
        let mut out = OutputBuffer::for_plan(&plan);
        NaiveKernel.dedisperse(&plan, &input, &mut out).unwrap();
        for sample in 0..plan.out_samples() {
            let mut acc = 0.0f32;
            for ch in 0..plan.channels() {
                acc += input.channel(ch)[sample];
            }
            assert_eq!(out.series(0)[sample], acc);
        }
    }

    #[test]
    fn shifts_are_applied_per_channel() {
        // Put a spike in one channel at the exact delayed position of
        // trial 2, sample 10; it must appear in trial 2's output bin 10.
        let plan = small_plan(4);
        let mut input = InputBuffer::for_plan(&plan);
        let trial = 2;
        let ch = 0; // lowest channel: largest delay
        let sample = 10;
        let shift = plan.delays().delay(trial, ch);
        assert!(shift > 0, "test needs a non-trivial delay");
        input.channel_mut(ch)[sample + shift] = 5.0;

        let mut out = OutputBuffer::for_plan(&plan);
        NaiveKernel.dedisperse(&plan, &input, &mut out).unwrap();
        assert_eq!(out.series(trial)[sample], 5.0);
        // A trial with a different delay for this channel misses the spike.
        for other in 0..plan.trials() {
            if plan.delays().delay(other, ch) != shift {
                assert_eq!(out.series(other)[sample], 0.0);
            }
        }
    }

    #[test]
    fn linearity() {
        // dedisperse(a + b) == dedisperse(a) + dedisperse(b) for exact
        // float inputs that avoid rounding (powers of two).
        let plan = small_plan(4);
        let mut a = InputBuffer::for_plan(&plan);
        let mut b = InputBuffer::for_plan(&plan);
        for ch in 0..plan.channels() {
            for s in 0..plan.in_samples() {
                a.channel_mut(ch)[s] = if (ch + s) % 3 == 0 { 2.0 } else { 0.0 };
                b.channel_mut(ch)[s] = if (ch + s) % 5 == 0 { 4.0 } else { 0.0 };
            }
        }
        let mut sum = InputBuffer::for_plan(&plan);
        for i in 0..sum.as_slice().len() {
            sum.as_mut_slice()[i] = a.as_slice()[i] + b.as_slice()[i];
        }
        let mut out_a = OutputBuffer::for_plan(&plan);
        let mut out_b = OutputBuffer::for_plan(&plan);
        let mut out_sum = OutputBuffer::for_plan(&plan);
        NaiveKernel.dedisperse(&plan, &a, &mut out_a).unwrap();
        NaiveKernel.dedisperse(&plan, &b, &mut out_b).unwrap();
        NaiveKernel.dedisperse(&plan, &sum, &mut out_sum).unwrap();
        for i in 0..out_sum.as_slice().len() {
            assert_eq!(
                out_sum.as_slice()[i],
                out_a.as_slice()[i] + out_b.as_slice()[i]
            );
        }
    }

    #[test]
    fn rejects_mismatched_buffers() {
        let plan = small_plan(4);
        let input = InputBuffer::zeroed(3, 10);
        let mut out = OutputBuffer::for_plan(&plan);
        assert!(NaiveKernel.dedisperse(&plan, &input, &mut out).is_err());

        let input = InputBuffer::for_plan(&plan);
        let mut out = OutputBuffer::zeroed(1, 1);
        assert!(NaiveKernel.dedisperse(&plan, &input, &mut out).is_err());
    }

    #[test]
    fn name() {
        assert_eq!(NaiveKernel.name(), "naive");
    }
}
