//! The configuration-specialized tiled kernel (paper, Section III-B).
//!
//! The problem is decomposed into two-dimensional work-group tiles of
//! `tile_dm` trial DMs × `tile_time` samples. For each tile and channel,
//! the span of input needed by *all* trials of the tile is staged once
//! into an emulated local memory, so a sample whose delayed position is
//! shared by several close DMs is fetched from the (slow, global) input
//! buffer exactly once per tile — the data-reuse that raises the
//! algorithm's arithmetic intensity. Accumulators live in a tile-local
//! buffer and are written back in a single pass, mirroring the paper's
//! register-resident accumulators and coalesced output writes.

use crate::buffer::{InputBuffer, OutputBuffer};
use crate::config::KernelConfig;
use crate::error::Result;
use crate::kernel::Dedisperser;
use crate::plan::DedispersionPlan;

/// Single-threaded execution of the tiled many-core algorithm.
#[derive(Debug, Clone, Copy)]
pub struct TiledKernel {
    config: KernelConfig,
}

impl TiledKernel {
    /// Creates a tiled kernel specialized for `config`.
    pub fn new(config: KernelConfig) -> Self {
        Self { config }
    }

    /// The configuration this kernel was specialized for.
    pub fn config(&self) -> KernelConfig {
        self.config
    }
}

impl Dedisperser for TiledKernel {
    fn name(&self) -> &'static str {
        "tiled"
    }

    fn dedisperse(
        &self,
        plan: &DedispersionPlan,
        input: &InputBuffer,
        output: &mut OutputBuffer,
    ) -> Result<()> {
        input.check_plan(plan)?;
        output.check_plan(plan)?;
        self.config
            .validate_for(plan.out_samples(), plan.trials())?;

        let tile_dm = self.config.tile_dm() as usize;
        let out_samples = plan.out_samples();
        let mut scratch = TileScratch::new(&self.config);

        let mut trial_lo = 0;
        while trial_lo < plan.trials() {
            let trial_hi = (trial_lo + tile_dm).min(plan.trials());
            let rows = &mut output.as_mut_slice()[trial_lo * out_samples..trial_hi * out_samples];
            process_dm_strip(
                plan,
                input,
                &self.config,
                trial_lo,
                trial_hi,
                rows,
                &mut scratch,
            );
            trial_lo = trial_hi;
        }
        Ok(())
    }
}

/// Reusable per-worker scratch buffers: the emulated local memory and the
/// tile-local accumulators.
pub(crate) struct TileScratch {
    local: Vec<f32>,
    acc: Vec<f32>,
    tile_time: usize,
}

impl TileScratch {
    pub(crate) fn new(config: &KernelConfig) -> Self {
        let tile_time = config.tile_time() as usize;
        let tile_dm = config.tile_dm() as usize;
        Self {
            local: Vec::new(),
            acc: vec![0.0; tile_time * tile_dm],
            tile_time,
        }
    }
}

/// Processes one horizontal strip of trial DMs `[trial_lo, trial_hi)`,
/// iterating over all time tiles. `rows` is the output region for exactly
/// those trials (`(trial_hi - trial_lo) × out_samples`, trial-major).
///
/// This is the shared work-group body used by both [`TiledKernel`] and
/// the rayon-parallel kernel.
pub(crate) fn process_dm_strip(
    plan: &DedispersionPlan,
    input: &InputBuffer,
    config: &KernelConfig,
    trial_lo: usize,
    trial_hi: usize,
    rows: &mut [f32],
    scratch: &mut TileScratch,
) {
    let out_samples = plan.out_samples();
    let channels = plan.channels();
    let delays = plan.delays();
    let tile_time = config.tile_time() as usize;
    let n_trials = trial_hi - trial_lo;
    debug_assert_eq!(rows.len(), n_trials * out_samples);
    debug_assert_eq!(scratch.tile_time, tile_time);

    let mut t0 = 0;
    while t0 < out_samples {
        let tt = tile_time.min(out_samples - t0);
        let acc = &mut scratch.acc[..n_trials * tile_time];
        acc.fill(0.0);

        for ch in 0..channels {
            // Delays grow monotonically with the trial index, so the
            // smallest delay in the strip belongs to `trial_lo` and the
            // largest to `trial_hi - 1`.
            let base = delays.delay(trial_lo, ch);
            let max_off = delays.delay(trial_hi - 1, ch) - base;
            let span = tt + max_off;

            // Stage the shared input span into "local memory" once.
            let src = &input.channel(ch)[t0 + base..t0 + base + span];
            scratch.local.clear();
            scratch.local.extend_from_slice(src);

            // Each trial of the tile accumulates from its own offset into
            // the staged span; the inner loop is contiguous and
            // auto-vectorizes.
            for (tr_rel, trial) in (trial_lo..trial_hi).enumerate() {
                let off = delays.delay(trial, ch) - base;
                let staged = &scratch.local[off..off + tt];
                let dst = &mut acc[tr_rel * tile_time..tr_rel * tile_time + tt];
                for (d, s) in dst.iter_mut().zip(staged) {
                    *d += *s;
                }
            }
        }

        // Single coalesced write-back per tile.
        for tr_rel in 0..n_trials {
            let dst = &mut rows[tr_rel * out_samples + t0..tr_rel * out_samples + t0 + tt];
            dst.copy_from_slice(&acc[tr_rel * tile_time..tr_rel * tile_time + tt]);
        }
        t0 += tt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::{hash_input, small_plan};
    use crate::kernel::NaiveKernel;

    fn reference(plan: &DedispersionPlan, input: &InputBuffer) -> OutputBuffer {
        let mut out = OutputBuffer::for_plan(plan);
        NaiveKernel.dedisperse(plan, input, &mut out).unwrap();
        out
    }

    #[test]
    fn matches_reference_exactly_for_many_configs() {
        let plan = small_plan(12);
        let input = hash_input(&plan);
        let expected = reference(&plan, &input);
        for (wt, wd, et, ed) in [
            (1, 1, 1, 1),
            (8, 1, 1, 1),
            (1, 4, 1, 1),
            (4, 2, 2, 3),
            (16, 3, 2, 2),
            (25, 2, 4, 1),
            (10, 1, 20, 12),
            (200, 12, 1, 1),
        ] {
            let config = KernelConfig::new(wt, wd, et, ed).unwrap();
            let mut out = OutputBuffer::for_plan(&plan);
            TiledKernel::new(config)
                .dedisperse(&plan, &input, &mut out)
                .unwrap();
            assert_eq!(
                out.max_abs_diff(&expected),
                0.0,
                "config {config} diverges from the reference"
            );
        }
    }

    #[test]
    fn partial_tiles_are_handled() {
        // 12 trials with a DM tile of 5 and 200 samples with a time tile
        // of 48: neither dimension divides evenly.
        let plan = small_plan(12);
        let input = hash_input(&plan);
        let expected = reference(&plan, &input);
        let config = KernelConfig::new(16, 5, 3, 1).unwrap(); // tile 48 x 5
        let mut out = OutputBuffer::for_plan(&plan);
        TiledKernel::new(config)
            .dedisperse(&plan, &input, &mut out)
            .unwrap();
        assert_eq!(out.max_abs_diff(&expected), 0.0);
    }

    #[test]
    fn zero_dm_plan_matches_reference() {
        let plan = crate::plan::DedispersionPlan::builder()
            .band(crate::freq::FrequencyBand::new(140.0, 0.5, 16).unwrap())
            .dm_grid(crate::dm::DmGrid::paper_grid(8).unwrap())
            .sample_rate(200)
            .zero_dm(true)
            .build()
            .unwrap();
        let input = hash_input(&plan);
        let expected = reference(&plan, &input);
        let config = KernelConfig::new(8, 4, 2, 2).unwrap();
        let mut out = OutputBuffer::for_plan(&plan);
        TiledKernel::new(config)
            .dedisperse(&plan, &input, &mut out)
            .unwrap();
        assert_eq!(out.max_abs_diff(&expected), 0.0);
    }

    #[test]
    fn oversized_tile_is_rejected() {
        let plan = small_plan(4);
        let input = hash_input(&plan);
        let mut out = OutputBuffer::for_plan(&plan);
        // DM tile of 8 > 4 trials.
        let config = KernelConfig::new(8, 8, 1, 1).unwrap();
        assert!(TiledKernel::new(config)
            .dedisperse(&plan, &input, &mut out)
            .is_err());
        // Time tile of 256 > 200 samples.
        let config = KernelConfig::new(256, 1, 1, 1).unwrap();
        assert!(TiledKernel::new(config)
            .dedisperse(&plan, &input, &mut out)
            .is_err());
    }

    #[test]
    fn config_accessor() {
        let config = KernelConfig::new(8, 4, 2, 2).unwrap();
        assert_eq!(TiledKernel::new(config).config(), config);
        assert_eq!(TiledKernel::new(config).name(), "tiled");
    }
}
