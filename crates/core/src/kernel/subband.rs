//! Two-stage subband dedispersion.
//!
//! The brute-force algorithm costs `O(d·s·c)`. Production pipelines
//! descended from this paper (e.g. AMBER) cut that with a two-stage
//! *subband* scheme:
//!
//! 1. the band is split into `n_sub` contiguous subbands, and each
//!    subband is dedispersed only for `d_sub ≪ d` coarse trial DMs
//!    (cost `d_sub·s·c`);
//! 2. every fine trial DM then combines the `n_sub` partial series of
//!    its nearest coarse DM, shifted by the *residual* delay of each
//!    subband's reference frequency (cost `d·s·n_sub`).
//!
//! Total: `O(d_sub·s·c + d·s·n_sub)` instead of `O(d·s·c)` — for the
//! Apertif-scale `c = 1024`, `n_sub = 32`, `d_sub = d/16` this is a
//! ~10× flop reduction. The price is approximation error: within a
//! subband, stage 1 uses one delay for channels whose true delays
//! differ by up to the subband's internal smear. [`SubbandKernel`]
//! exposes both the speedup and the error so the trade-off is
//! measurable (see `max_smear_samples`).

use crate::buffer::{InputBuffer, OutputBuffer};
use crate::error::{DedispError, Result};
use crate::kernel::Dedisperser;
use crate::plan::DedispersionPlan;

/// Configuration of the two-stage scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubbandConfig {
    /// Number of contiguous subbands the channels are split into. Must
    /// divide the channel count.
    pub subbands: usize,
    /// How many fine trials share one coarse trial (stage-1 DM stride).
    /// The coarse grid is the fine grid downsampled by this factor.
    pub dm_stride: usize,
}

impl SubbandConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if either field is zero.
    pub fn new(subbands: usize, dm_stride: usize) -> Result<Self> {
        if subbands == 0 {
            return Err(DedispError::invalid("subbands", "must be non-zero"));
        }
        if dm_stride == 0 {
            return Err(DedispError::invalid("dm_stride", "must be non-zero"));
        }
        Ok(Self {
            subbands,
            dm_stride,
        })
    }

    /// Flop of the two-stage scheme for a `(channels, samples, trials)`
    /// problem, for comparison against the brute-force `d·s·c`.
    pub fn flop(&self, channels: usize, samples: usize, trials: usize) -> u64 {
        let coarse = trials.div_ceil(self.dm_stride);
        (coarse * samples * channels) as u64 + (trials * samples * self.subbands) as u64
    }

    /// The flop reduction factor relative to brute force (> 1 is a win).
    pub fn speedup_factor(&self, channels: usize, samples: usize, trials: usize) -> f64 {
        let brute = (trials * samples * channels) as f64;
        brute / self.flop(channels, samples, trials) as f64
    }
}

/// The two-stage subband dedisperser.
///
/// Produces an *approximation* of the brute-force transform: per output
/// element, each channel's contribution is shifted by at most the
/// intra-subband residual-delay error of its coarse DM (bounded by
/// [`SubbandKernel::max_smear_samples`]).
#[derive(Debug, Clone, Copy)]
pub struct SubbandKernel {
    config: SubbandConfig,
}

impl SubbandKernel {
    /// Creates a kernel with the given subband configuration.
    pub fn new(config: SubbandConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> SubbandConfig {
        self.config
    }

    /// Validates the configuration against a plan.
    ///
    /// # Errors
    ///
    /// Returns an error if the subband count does not divide the
    /// channel count.
    pub fn validate(&self, plan: &DedispersionPlan) -> Result<()> {
        if !plan.channels().is_multiple_of(self.config.subbands) {
            return Err(DedispError::incompatible(format!(
                "{} subbands do not divide {} channels",
                self.config.subbands,
                plan.channels()
            )));
        }
        Ok(())
    }

    /// Worst-case approximation shift in samples: the largest difference
    /// between a channel's exact delay and the delay applied to it by
    /// the two-stage scheme, over all (trial, channel) pairs.
    pub fn max_smear_samples(&self, plan: &DedispersionPlan) -> usize {
        let channels = plan.channels();
        let per_sub = channels / self.config.subbands;
        let delays = plan.delays();
        let mut worst = 0usize;
        for trial in 0..plan.trials() {
            let coarse = self.coarse_trial(trial, plan.trials());
            for ch in 0..channels {
                let sub = ch / per_sub;
                let sub_ref = sub * per_sub + per_sub - 1; // top channel of the subband
                let shift = self.stage1_shift(plan, coarse, sub_ref, ch);
                let applied = shift + delays.delay(trial, sub_ref);
                let exact = delays.delay(trial, ch);
                worst = worst.max(applied.abs_diff(exact));
            }
        }
        worst
    }

    /// The intra-subband shift stage 1 applies for `ch` relative to its
    /// subband reference at the given coarse trial — capped so that no
    /// fine trial sharing this coarse trial can read past the plan's
    /// input buffer (delay-table rounding can otherwise overshoot the
    /// exact worst-case delay by a sample).
    fn stage1_shift(
        &self,
        plan: &DedispersionPlan,
        coarse: usize,
        sub_ref: usize,
        ch: usize,
    ) -> usize {
        let delays = plan.delays();
        let raw = delays.delay(coarse, ch) - delays.delay(coarse, sub_ref);
        let trial_hi = (coarse + self.config.dm_stride - 1).min(plan.trials() - 1);
        let cap = delays.max_delay() - delays.delay(trial_hi, sub_ref);
        raw.min(cap)
    }

    #[inline]
    fn coarse_trial(&self, trial: usize, _trials: usize) -> usize {
        // Round *down* to the stride grid. Downward rounding guarantees
        // the applied delay never exceeds the exact one (delay spreads
        // grow with DM), so every read stays inside the plan's input
        // buffer and no channel contribution is ever lost; it also makes
        // the approximation error monotone in the stride.
        (trial / self.config.dm_stride) * self.config.dm_stride
    }
}

impl Dedisperser for SubbandKernel {
    fn name(&self) -> &'static str {
        "subband"
    }

    fn dedisperse(
        &self,
        plan: &DedispersionPlan,
        input: &InputBuffer,
        output: &mut OutputBuffer,
    ) -> Result<()> {
        input.check_plan(plan)?;
        output.check_plan(plan)?;
        self.validate(plan)?;

        let channels = plan.channels();
        let trials = plan.trials();
        let out_samples = plan.out_samples();
        let in_samples = plan.in_samples();
        let n_sub = self.config.subbands;
        let per_sub = channels / n_sub;
        let delays = plan.delays();

        // Coarse trial indices actually needed by stage 2.
        let mut coarse_used = vec![false; trials];
        for trial in 0..trials {
            coarse_used[self.coarse_trial(trial, trials)] = true;
        }

        // Stage 1: per (coarse trial, subband), dedisperse the subband's
        // channels *relative to the subband's own top channel*, keeping
        // the full input length so stage 2 can still shift.
        //
        // Intermediate layout: partial[coarse][sub] is a Vec<f32> of
        // in_samples (only coarse trials in use are materialized).
        let mut partial: Vec<Vec<Vec<f32>>> = vec![Vec::new(); trials];
        for (coarse, used) in coarse_used.iter().enumerate() {
            if !used {
                continue;
            }
            let mut subs = Vec::with_capacity(n_sub);
            for sub in 0..n_sub {
                let sub_ref = sub * per_sub + per_sub - 1;
                let mut acc = vec![0.0f32; in_samples];
                for ch in sub * per_sub..(sub + 1) * per_sub {
                    // Intra-subband shift at the coarse DM, capped so no
                    // fine trial reads past the input buffer.
                    let shift = self.stage1_shift(plan, coarse, sub_ref, ch);
                    let src = &input.channel(ch)[shift..];
                    let n = in_samples - shift;
                    for (a, s) in acc[..n].iter_mut().zip(&src[..n]) {
                        *a += *s;
                    }
                }
                subs.push(acc);
            }
            partial[coarse] = subs;
        }

        // Stage 2: per fine trial, combine the subband partials shifted
        // by the exact delay of each subband's reference channel.
        for trial in 0..trials {
            let coarse = self.coarse_trial(trial, trials);
            let subs = &partial[coarse];
            let series = output.series_mut(trial);
            series.fill(0.0);
            for (sub, acc) in subs.iter().enumerate() {
                let sub_ref = sub * per_sub + per_sub - 1;
                let shift = delays.delay(trial, sub_ref);
                let src = &acc[shift..shift + out_samples];
                for (o, s) in series.iter_mut().zip(src) {
                    *o += *s;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::DmGrid;
    use crate::freq::FrequencyBand;
    use crate::kernel::testutil::hash_input;
    use crate::kernel::NaiveKernel;

    fn plan(channels: usize, trials: usize, rate: u32) -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.25, channels).unwrap())
            .dm_grid(DmGrid::new(0.0, 0.5, trials).unwrap())
            .sample_rate(rate)
            .build()
            .unwrap()
    }

    #[test]
    fn stride_one_full_subbands_is_exact() {
        // With one channel per subband and no DM decimation the scheme
        // degenerates to exact brute force.
        let p = plan(16, 8, 300);
        let input = hash_input(&p);
        let mut exact = OutputBuffer::for_plan(&p);
        NaiveKernel.dedisperse(&p, &input, &mut exact).unwrap();
        let kernel = SubbandKernel::new(SubbandConfig::new(16, 1).unwrap());
        assert_eq!(kernel.max_smear_samples(&p), 0);
        let mut out = OutputBuffer::for_plan(&p);
        kernel.dedisperse(&p, &input, &mut out).unwrap();
        assert!(
            out.max_abs_diff(&exact) < 1e-3,
            "diff {}",
            out.max_abs_diff(&exact)
        );
    }

    #[test]
    fn smear_grows_with_fewer_subbands_and_larger_stride() {
        let p = plan(32, 16, 2_000);
        let fine = SubbandKernel::new(SubbandConfig::new(32, 1).unwrap());
        let mid = SubbandKernel::new(SubbandConfig::new(8, 2).unwrap());
        let coarse = SubbandKernel::new(SubbandConfig::new(2, 8).unwrap());
        let a = fine.max_smear_samples(&p);
        let b = mid.max_smear_samples(&p);
        let c = coarse.max_smear_samples(&p);
        assert!(a <= b && b <= c, "{a} {b} {c}");
        assert!(c > 0);
    }

    #[test]
    fn constant_input_still_sums_all_channels() {
        // Shifting never loses or duplicates contributions: a constant
        // input must dedisperse to the channel count in every bin even
        // through the two-stage path.
        let p = plan(24, 12, 500);
        let input = InputBuffer::constant(&p, 1.0);
        let kernel = SubbandKernel::new(SubbandConfig::new(6, 3).unwrap());
        let mut out = OutputBuffer::for_plan(&p);
        kernel.dedisperse(&p, &input, &mut out).unwrap();
        for &v in out.as_slice() {
            assert!((v - 24.0).abs() < 1e-3, "{v}");
        }
    }

    #[test]
    fn approximation_error_is_bounded_by_smear() {
        // An impulse dedispersed through the subband path lands within
        // max_smear_samples of where brute force puts it.
        let p = plan(32, 16, 2_000);
        let kernel = SubbandKernel::new(SubbandConfig::new(8, 4).unwrap());
        let smear = kernel.max_smear_samples(&p);

        let trial = 13;
        let mut input = InputBuffer::for_plan(&p);
        // A dispersed impulse matching `trial` exactly.
        for ch in 0..p.channels() {
            let shift = p.delays().delay(trial, ch);
            input.channel_mut(ch)[200 + shift] = 1.0;
        }
        let mut out = OutputBuffer::for_plan(&p);
        kernel.dedisperse(&p, &input, &mut out).unwrap();
        // All 32 units of signal are within ±smear of bin 200.
        let lo = 200 - smear;
        let hi = 200 + smear;
        let captured: f32 = out.series(trial)[lo..=hi].iter().sum();
        assert!(
            (captured - 32.0).abs() < 1e-3,
            "captured {captured} within ±{smear}"
        );
    }

    #[test]
    fn flop_accounting_beats_brute_force_at_scale() {
        let cfg = SubbandConfig::new(32, 16).unwrap();
        // Apertif-scale: c=1024, s=20000, d=2048.
        let speedup = cfg.speedup_factor(1024, 20_000, 2048);
        assert!(speedup > 5.0, "speedup {speedup}");
        let exact_cost = cfg.flop(1024, 20_000, 2048);
        assert_eq!(
            exact_cost,
            (128u64 * 20_000 * 1024) + (2048u64 * 20_000 * 32)
        );
    }

    #[test]
    fn rejects_non_dividing_subbands() {
        let p = plan(30, 8, 300);
        let kernel = SubbandKernel::new(SubbandConfig::new(8, 2).unwrap());
        let input = hash_input(&p);
        let mut out = OutputBuffer::for_plan(&p);
        assert!(kernel.dedisperse(&p, &input, &mut out).is_err());
    }

    #[test]
    fn rejects_zero_parameters() {
        assert!(SubbandConfig::new(0, 1).is_err());
        assert!(SubbandConfig::new(4, 0).is_err());
    }

    #[test]
    fn name_and_accessors() {
        let cfg = SubbandConfig::new(4, 2).unwrap();
        let k = SubbandKernel::new(cfg);
        assert_eq!(k.name(), "subband");
        assert_eq!(k.config(), cfg);
    }
}
