//! The rayon-parallel tiled kernel.
//!
//! Work-group strips along the DM dimension are independent — each owns a
//! disjoint set of output rows — so they are distributed over a rayon
//! thread pool, the host-side analog of the OpenCL work-group grid
//! launched across the compute units of an accelerator.

use rayon::prelude::*;

use crate::buffer::{InputBuffer, OutputBuffer};
use crate::config::KernelConfig;
use crate::error::Result;
use crate::kernel::tiled::{process_dm_strip, TileScratch};
use crate::kernel::Dedisperser;
use crate::plan::DedispersionPlan;

/// Multi-threaded execution of the tiled many-core algorithm.
#[derive(Debug, Clone, Copy)]
pub struct ParallelKernel {
    config: KernelConfig,
}

impl ParallelKernel {
    /// Creates a parallel kernel specialized for `config`.
    pub fn new(config: KernelConfig) -> Self {
        Self { config }
    }

    /// The configuration this kernel was specialized for.
    pub fn config(&self) -> KernelConfig {
        self.config
    }
}

impl Dedisperser for ParallelKernel {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn dedisperse(
        &self,
        plan: &DedispersionPlan,
        input: &InputBuffer,
        output: &mut OutputBuffer,
    ) -> Result<()> {
        input.check_plan(plan)?;
        output.check_plan(plan)?;
        self.config
            .validate_for(plan.out_samples(), plan.trials())?;

        let tile_dm = self.config.tile_dm() as usize;
        let out_samples = plan.out_samples();
        let config = self.config;

        output
            .as_mut_slice()
            .par_chunks_mut(tile_dm * out_samples)
            .enumerate()
            .for_each(|(strip, rows)| {
                let trial_lo = strip * tile_dm;
                let trial_hi = (trial_lo + tile_dm).min(plan.trials());
                let mut scratch = TileScratch::new(&config);
                process_dm_strip(plan, input, &config, trial_lo, trial_hi, rows, &mut scratch);
            });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::testutil::{hash_input, small_plan};
    use crate::kernel::NaiveKernel;

    #[test]
    fn matches_reference_exactly() {
        let plan = small_plan(16);
        let input = hash_input(&plan);
        let mut expected = OutputBuffer::for_plan(&plan);
        NaiveKernel
            .dedisperse(&plan, &input, &mut expected)
            .unwrap();

        for (wt, wd, et, ed) in [(1, 1, 1, 1), (8, 2, 2, 2), (25, 1, 2, 16), (50, 16, 4, 1)] {
            let config = KernelConfig::new(wt, wd, et, ed).unwrap();
            let mut out = OutputBuffer::for_plan(&plan);
            ParallelKernel::new(config)
                .dedisperse(&plan, &input, &mut out)
                .unwrap();
            assert_eq!(
                out.max_abs_diff(&expected),
                0.0,
                "config {config} diverges from the reference"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        // Thread scheduling must not affect results: strips own disjoint
        // output rows and accumulate in a fixed order.
        let plan = small_plan(9);
        let input = hash_input(&plan);
        let config = KernelConfig::new(16, 2, 2, 1).unwrap();
        let kernel = ParallelKernel::new(config);
        let mut first = OutputBuffer::for_plan(&plan);
        kernel.dedisperse(&plan, &input, &mut first).unwrap();
        for _ in 0..3 {
            let mut out = OutputBuffer::for_plan(&plan);
            kernel.dedisperse(&plan, &input, &mut out).unwrap();
            assert_eq!(out.max_abs_diff(&first), 0.0);
        }
    }

    #[test]
    fn rejects_oversized_tile() {
        let plan = small_plan(4);
        let input = hash_input(&plan);
        let mut out = OutputBuffer::for_plan(&plan);
        let config = KernelConfig::new(8, 8, 1, 1).unwrap();
        assert!(ParallelKernel::new(config)
            .dedisperse(&plan, &input, &mut out)
            .is_err());
    }

    #[test]
    fn accessors() {
        let config = KernelConfig::new(8, 4, 2, 2).unwrap();
        let k = ParallelKernel::new(config);
        assert_eq!(k.config(), config);
        assert_eq!(k.name(), "parallel");
    }
}
