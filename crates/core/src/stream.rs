//! Continuous-observation streaming: the rolling input window.
//!
//! Dedispersing one second of output needs `s + max_delay` input samples
//! (the tail of each second overlaps the head of the next by the
//! worst-case delay). A [`StreamWindow`] owns that rolling window: push
//! one second of fresh samples per channel, and the window shifts its
//! history so any kernel can dedisperse the current second directly —
//! the buffering a real-time backend performs between the beamformer
//! and the dedispersion kernel.

use crate::buffer::InputBuffer;
use crate::error::{DedispError, Result};
use crate::plan::DedispersionPlan;

/// A rolling `channels × (out_samples + max_delay)` input window.
#[derive(Debug, Clone)]
pub struct StreamWindow {
    buffer: InputBuffer,
    out_samples: usize,
    overlap: usize,
    seconds_pushed: u64,
}

impl StreamWindow {
    /// Creates an empty (zero-history) window shaped for `plan`.
    pub fn for_plan(plan: &DedispersionPlan) -> Self {
        Self {
            buffer: InputBuffer::for_plan(plan),
            out_samples: plan.out_samples(),
            overlap: plan.in_samples() - plan.out_samples(),
            seconds_pushed: 0,
        }
    }

    /// Samples of history carried across pushes (`max_delay`).
    pub fn overlap(&self) -> usize {
        self.overlap
    }

    /// Seconds pushed so far.
    pub fn seconds_pushed(&self) -> u64 {
        self.seconds_pushed
    }

    /// Whether enough data has been pushed for the *whole* window to be
    /// real data (before that, the oldest `overlap` samples are the
    /// zero-filled cold start).
    pub fn warmed_up(&self) -> bool {
        self.seconds_pushed as u128 * self.out_samples as u128 >= self.overlap as u128
    }

    /// Pushes one second of fresh samples: `fresh[ch]` must hold exactly
    /// `out_samples` values for each channel. The window shifts left by
    /// `out_samples` and appends the new block at the end.
    ///
    /// After the push, [`StreamWindow::window`] covers the *newest*
    /// dedispersable second: output sample `i` of that second reads
    /// window positions `i + Δ`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the channel count or block length is
    /// wrong.
    pub fn push_second(&mut self, fresh: &[&[f32]]) -> Result<()> {
        if fresh.len() != self.buffer.channels() {
            return Err(DedispError::ShapeMismatch {
                expected: format!("{} channels", self.buffer.channels()),
                found: format!("{} channels", fresh.len()),
            });
        }
        for (ch, block) in fresh.iter().enumerate() {
            if block.len() != self.out_samples {
                return Err(DedispError::ShapeMismatch {
                    expected: format!("{} samples", self.out_samples),
                    found: format!("{} samples (channel {ch})", block.len()),
                });
            }
        }
        let width = self.out_samples + self.overlap;
        for (ch, block) in fresh.iter().enumerate() {
            let row = self.buffer.channel_mut(ch);
            row.copy_within(self.out_samples..width, 0);
            row[self.overlap..].copy_from_slice(block);
        }
        self.seconds_pushed += 1;
        Ok(())
    }

    /// The current window, shaped exactly as a plan's input buffer and
    /// ordered oldest-first.
    ///
    /// Dedispersing it produces the newest *fully covered* second: after
    /// `k` pushes the window spans absolute samples
    /// `[k·s − (s + overlap), k·s)`, so output bin `i` corresponds to
    /// absolute sample `k·s − s − overlap + i` and reads
    /// `window.channel(ch)[i + Δ(ch, trial)]`, which stays in range
    /// because `Δ ≤ overlap`. Dedispersed output therefore trails the
    /// newest raw sample by `overlap` samples — the unavoidable latency
    /// of dedispersion at the highest trial DM.
    pub fn window(&self) -> &InputBuffer {
        &self.buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::DmGrid;
    use crate::freq::FrequencyBand;
    use crate::kernel::dedisperse;

    fn plan() -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 8).unwrap())
            .dm_grid(DmGrid::new(0.0, 2.0, 6).unwrap())
            .sample_rate(100)
            .build()
            .unwrap()
    }

    /// A long continuous signal per channel, sliced into seconds.
    fn long_signal(plan: &DedispersionPlan, total_seconds: usize) -> Vec<Vec<f32>> {
        let n = plan.out_samples() * total_seconds + plan.delays().max_delay();
        (0..plan.channels())
            .map(|ch| {
                (0..n)
                    .map(|s| {
                        let mut x = (ch * n + s) as u64;
                        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
                        (x >> 40) as f32 / (1u64 << 24) as f32
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn window_matches_offline_slicing() {
        // Streaming seconds through the window must reproduce exactly
        // the result of dedispersing the corresponding offline slice.
        let plan = plan();
        let s = plan.out_samples();
        let total = 4;
        let signal = long_signal(&plan, total);
        let mut window = StreamWindow::for_plan(&plan);

        for second in 0..total {
            let blocks: Vec<&[f32]> = signal
                .iter()
                .map(|chan| &chan[second * s..(second + 1) * s])
                .collect();
            window.push_second(&blocks).unwrap();
        }
        assert_eq!(window.seconds_pushed(), 4);

        // The window now ends at sample 4s; dedispersable second is
        // [3s - overlap .. 4s)? No: the window covers
        // [4s - (s + overlap) .. 4s) = [3s - overlap .. 4s). Its first
        // `s` positions feed output second covering absolute samples
        // [3s - overlap .. 4s - overlap).
        let streamed = dedisperse(&plan, window.window()).unwrap();

        // Offline: build the same absolute slice directly.
        let start = 3 * s - window.overlap();
        let mut offline_in = InputBuffer::for_plan(&plan);
        for (ch, chan) in signal.iter().enumerate().take(plan.channels()) {
            offline_in
                .channel_mut(ch)
                .copy_from_slice(&chan[start..start + plan.in_samples()]);
        }
        let offline = dedisperse(&plan, &offline_in).unwrap();
        assert_eq!(streamed.max_abs_diff(&offline), 0.0);
    }

    #[test]
    fn warmup_accounting() {
        let plan = plan();
        let mut window = StreamWindow::for_plan(&plan);
        assert!(window.overlap() > 0);
        assert!(!window.warmed_up() || window.overlap() == 0);
        let zeros = vec![vec![0.0f32; plan.out_samples()]; plan.channels()];
        let blocks: Vec<&[f32]> = zeros.iter().map(Vec::as_slice).collect();
        // One second of 100 samples exceeds the small overlap here.
        window.push_second(&blocks).unwrap();
        assert!(window.warmed_up());
    }

    #[test]
    fn shape_errors() {
        let plan = plan();
        let mut window = StreamWindow::for_plan(&plan);
        let short = vec![vec![0.0f32; 3]; plan.channels()];
        let blocks: Vec<&[f32]> = short.iter().map(Vec::as_slice).collect();
        assert!(window.push_second(&blocks).is_err());
        let wrong_channels = vec![vec![0.0f32; plan.out_samples()]; 2];
        let blocks: Vec<&[f32]> = wrong_channels.iter().map(Vec::as_slice).collect();
        assert!(window.push_second(&blocks).is_err());
    }

    #[test]
    fn history_shifts_correctly() {
        let plan = plan();
        let mut window = StreamWindow::for_plan(&plan);
        let s = plan.out_samples();
        // Push a recognizable ramp twice; the first push's tail must
        // appear at the start of the window after the second push.
        let first: Vec<Vec<f32>> = (0..plan.channels())
            .map(|ch| (0..s).map(|i| (ch * 1000 + i) as f32).collect())
            .collect();
        let second: Vec<Vec<f32>> = (0..plan.channels())
            .map(|ch| (0..s).map(|i| (ch * 1000 + 500 + i) as f32).collect())
            .collect();
        window
            .push_second(&first.iter().map(Vec::as_slice).collect::<Vec<_>>())
            .unwrap();
        window
            .push_second(&second.iter().map(Vec::as_slice).collect::<Vec<_>>())
            .unwrap();
        let ov = window.overlap();
        for ch in 0..plan.channels() {
            let row = window.window().channel(ch);
            // Window = last `ov` samples of `first` followed by `second`.
            assert_eq!(row[0], first[ch][s - ov]);
            assert_eq!(row[ov], second[ch][0]);
            assert_eq!(row[ov + s - 1], second[ch][s - 1]);
        }
    }
}
