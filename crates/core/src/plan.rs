//! Dedispersion plans: the precomputed state shared by all kernels.
//!
//! A [`DedispersionPlan`] fixes the observational parameters (frequency
//! band, sampling rate), the trial-DM grid, and the derived delay table
//! and buffer shapes. Kernels execute against a plan; the auto-tuner
//! searches configurations for a plan. Plans follow the paper's batching
//! convention: one *second* of output is produced per invocation, so the
//! output is `d × s` (trials × samples-per-second) and the input is
//! `c × t` with `t = s + max_delay` (the number of samples needed to
//! dedisperse one second at the highest trial DM).

use serde::{Deserialize, Serialize};

use crate::delay::DelayTable;
use crate::dm::DmGrid;
use crate::error::{DedispError, Result};
use crate::freq::FrequencyBand;

/// Default cap on a single plan's input allocation (4 GiB), guarding
/// against accidentally huge LOFAR-like plans with thousands of trials.
pub const DEFAULT_ALLOCATION_LIMIT: u64 = 4 << 30;

/// All precomputed state needed to dedisperse one second of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DedispersionPlan {
    band: FrequencyBand,
    dm_grid: DmGrid,
    sample_rate: u32,
    delays: DelayTable,
    out_samples: usize,
    in_samples: usize,
    zero_dm: bool,
}

/// Builder for [`DedispersionPlan`].
#[derive(Debug, Clone, Default)]
pub struct PlanBuilder {
    band: Option<FrequencyBand>,
    dm_grid: Option<DmGrid>,
    sample_rate: Option<u32>,
    out_samples: Option<usize>,
    zero_dm: bool,
    allocation_limit: Option<u64>,
}

impl PlanBuilder {
    /// Sets the frequency band (required).
    pub fn band(mut self, band: FrequencyBand) -> Self {
        self.band = Some(band);
        self
    }

    /// Sets the trial-DM grid (required).
    pub fn dm_grid(mut self, grid: DmGrid) -> Self {
        self.dm_grid = Some(grid);
        self
    }

    /// Sets the sampling rate in samples/second (required).
    pub fn sample_rate(mut self, rate: u32) -> Self {
        self.sample_rate = Some(rate);
        self
    }

    /// Overrides the number of output samples per invocation. Defaults to
    /// one second of data (`sample_rate` samples), the paper's convention.
    pub fn out_samples(mut self, samples: usize) -> Self {
        self.out_samples = Some(samples);
        self
    }

    /// Replaces every delay with zero — the paper's third experiment
    /// (Section IV-C), exposing theoretically perfect data-reuse.
    pub fn zero_dm(mut self, enabled: bool) -> Self {
        self.zero_dm = enabled;
        self
    }

    /// Overrides the allocation guard (bytes of input buffer allowed).
    pub fn allocation_limit(mut self, bytes: u64) -> Self {
        self.allocation_limit = Some(bytes);
        self
    }

    /// Builds the plan, computing the delay table and buffer shapes.
    ///
    /// # Errors
    ///
    /// Returns an error if a required field is missing, a parameter is
    /// invalid, or the input buffer would exceed the allocation limit.
    pub fn build(self) -> Result<DedispersionPlan> {
        let band = self
            .band
            .ok_or_else(|| DedispError::invalid("band", "is required"))?;
        let dm_grid = self
            .dm_grid
            .ok_or_else(|| DedispError::invalid("dm_grid", "is required"))?;
        let sample_rate = self
            .sample_rate
            .ok_or_else(|| DedispError::invalid("sample_rate", "is required"))?;
        if sample_rate == 0 {
            return Err(DedispError::invalid("sample_rate", "must be non-zero"));
        }
        let out_samples = self.out_samples.unwrap_or(sample_rate as usize);
        if out_samples == 0 {
            return Err(DedispError::invalid("out_samples", "must be non-zero"));
        }
        let delays = if self.zero_dm {
            DelayTable::zeros(band.channels(), dm_grid.count(), sample_rate)?
        } else {
            DelayTable::build(&band, &dm_grid, sample_rate)?
        };
        let in_samples = out_samples + delays.max_delay();
        let limit = self.allocation_limit.unwrap_or(DEFAULT_ALLOCATION_LIMIT);
        let in_bytes = band.channels() as u64 * in_samples as u64 * 4;
        if in_bytes > limit {
            return Err(DedispError::AllocationTooLarge {
                bytes: in_bytes,
                limit,
            });
        }
        Ok(DedispersionPlan {
            band,
            dm_grid,
            sample_rate,
            delays,
            out_samples,
            in_samples,
            zero_dm: self.zero_dm,
        })
    }
}

impl DedispersionPlan {
    /// Starts building a plan.
    pub fn builder() -> PlanBuilder {
        PlanBuilder::default()
    }

    /// The observed frequency band.
    #[inline]
    pub fn band(&self) -> &FrequencyBand {
        &self.band
    }

    /// The trial-DM grid.
    #[inline]
    pub fn dm_grid(&self) -> &DmGrid {
        &self.dm_grid
    }

    /// Sampling rate in samples/second (`s` when dedispersing one second).
    #[inline]
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// The precomputed delay table.
    #[inline]
    pub fn delays(&self) -> &DelayTable {
        &self.delays
    }

    /// Number of frequency channels (`c`).
    #[inline]
    pub fn channels(&self) -> usize {
        self.band.channels()
    }

    /// Number of trial DMs (`d`).
    #[inline]
    pub fn trials(&self) -> usize {
        self.dm_grid.count()
    }

    /// Output samples per trial per invocation (`s`).
    #[inline]
    pub fn out_samples(&self) -> usize {
        self.out_samples
    }

    /// Input samples per channel per invocation (`t = s + max_delay`).
    #[inline]
    pub fn in_samples(&self) -> usize {
        self.in_samples
    }

    /// Whether this plan uses the all-zero delay table (perfect reuse).
    #[inline]
    pub fn is_zero_dm(&self) -> bool {
        self.zero_dm
    }

    /// Useful floating-point operations per invocation: one accumulate per
    /// (trial, sample, channel), i.e. `d·s·c` — the paper's FLOP metric.
    pub fn flop(&self) -> u64 {
        self.trials() as u64 * self.out_samples as u64 * self.channels() as u64
    }

    /// Input buffer size in bytes (`c × t` single-precision values).
    pub fn input_bytes(&self) -> u64 {
        self.channels() as u64 * self.in_samples as u64 * 4
    }

    /// Output buffer size in bytes (`d × s` single-precision values).
    pub fn output_bytes(&self) -> u64 {
        self.trials() as u64 * self.out_samples as u64 * 4
    }

    /// The minimum achievable wall-clock GFLOP/s for real-time operation:
    /// dedispersing one second of data must take at most one second
    /// (paper, Figures 6–7, "real-time" line). Scales linearly with the
    /// number of trials.
    pub fn realtime_gflops(&self) -> f64 {
        // flop() is per out_samples; normalize to one second of data.
        let per_second = self.flop() as f64 * self.sample_rate as f64 / self.out_samples as f64;
        per_second / 1e9
    }

    /// MFLOP per trial DM per second of data — the paper quotes 20 MFLOP
    /// for Apertif and 6 MFLOP for LOFAR (Section IV).
    pub fn mflop_per_dm(&self) -> f64 {
        self.sample_rate as f64 * self.channels() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_plan(trials: usize) -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(1420.0, 0.29, 64).unwrap())
            .dm_grid(DmGrid::paper_grid(trials).unwrap())
            .sample_rate(1000)
            .build()
            .unwrap()
    }

    #[test]
    fn shapes_follow_delays() {
        let plan = small_plan(32);
        assert_eq!(plan.channels(), 64);
        assert_eq!(plan.trials(), 32);
        assert_eq!(plan.out_samples(), 1000);
        assert_eq!(
            plan.in_samples(),
            1000 + plan.delays().max_delay(),
            "input must cover the worst-case delay"
        );
    }

    #[test]
    fn flop_and_bytes() {
        let plan = small_plan(32);
        assert_eq!(plan.flop(), 32 * 1000 * 64);
        assert_eq!(plan.output_bytes(), 32 * 1000 * 4);
        assert_eq!(plan.input_bytes(), 64 * plan.in_samples() as u64 * 4);
    }

    #[test]
    fn paper_mflop_per_dm() {
        // Apertif: 20,000 samples/s × 1,024 channels ≈ 20 MFLOP per DM.
        let apertif = DedispersionPlan::builder()
            .band(FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap())
            .dm_grid(DmGrid::paper_grid(2).unwrap())
            .sample_rate(20_000)
            .out_samples(100) // keep the test allocation tiny
            .build()
            .unwrap();
        assert!((apertif.mflop_per_dm() - 20.48).abs() < 0.01);

        // LOFAR: 200,000 samples/s × 32 channels = 6.4 MFLOP per DM.
        let lofar = DedispersionPlan::builder()
            .band(FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap())
            .dm_grid(DmGrid::paper_grid(2).unwrap())
            .sample_rate(200_000)
            .out_samples(100)
            .build()
            .unwrap();
        assert!((lofar.mflop_per_dm() - 6.4).abs() < 0.01);
    }

    #[test]
    fn realtime_threshold_scales_with_trials() {
        let p1 = small_plan(16);
        let p2 = small_plan(32);
        let r = p2.realtime_gflops() / p1.realtime_gflops();
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn realtime_normalizes_partial_seconds() {
        let full = small_plan(16);
        let partial = DedispersionPlan::builder()
            .band(FrequencyBand::new(1420.0, 0.29, 64).unwrap())
            .dm_grid(DmGrid::paper_grid(16).unwrap())
            .sample_rate(1000)
            .out_samples(100)
            .build()
            .unwrap();
        assert!((full.realtime_gflops() - partial.realtime_gflops()).abs() < 1e-9);
    }

    #[test]
    fn zero_dm_plan_has_no_delays() {
        let plan = DedispersionPlan::builder()
            .band(FrequencyBand::new(138.0, 0.19, 32).unwrap())
            .dm_grid(DmGrid::paper_grid(64).unwrap())
            .sample_rate(1000)
            .zero_dm(true)
            .build()
            .unwrap();
        assert!(plan.is_zero_dm());
        assert!(plan.delays().is_zero());
        assert_eq!(plan.in_samples(), plan.out_samples());
    }

    #[test]
    fn missing_fields_error() {
        assert!(DedispersionPlan::builder().build().is_err());
        assert!(DedispersionPlan::builder()
            .band(FrequencyBand::new(1420.0, 0.29, 64).unwrap())
            .build()
            .is_err());
        assert!(DedispersionPlan::builder()
            .band(FrequencyBand::new(1420.0, 0.29, 64).unwrap())
            .dm_grid(DmGrid::paper_grid(4).unwrap())
            .build()
            .is_err());
    }

    #[test]
    fn allocation_guard_trips() {
        let err = DedispersionPlan::builder()
            .band(FrequencyBand::new(138.0, 0.19, 32).unwrap())
            .dm_grid(DmGrid::paper_grid(4096).unwrap())
            .sample_rate(200_000)
            .allocation_limit(1 << 20)
            .build()
            .unwrap_err();
        assert!(matches!(err, DedispError::AllocationTooLarge { .. }));
    }

    #[test]
    fn zero_out_samples_rejected() {
        let err = DedispersionPlan::builder()
            .band(FrequencyBand::new(1420.0, 0.29, 8).unwrap())
            .dm_grid(DmGrid::paper_grid(4).unwrap())
            .sample_rate(1000)
            .out_samples(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, DedispError::InvalidParameter { .. }));
    }
}
