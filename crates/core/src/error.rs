//! Error type shared across the dedispersion library.

use std::fmt;

/// Result alias used throughout `dedisp-core`.
pub type Result<T> = std::result::Result<T, DedispError>;

/// Errors produced while building plans, validating configurations, or
/// executing kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum DedispError {
    /// A scalar parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A kernel configuration is incompatible with the plan it was applied
    /// to (e.g. a tile larger than the problem).
    IncompatibleConfig {
        /// Description of the mismatch.
        reason: String,
    },
    /// A buffer's dimensions do not match the plan.
    ShapeMismatch {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// The requested plan would require an unreasonably large allocation.
    AllocationTooLarge {
        /// Requested size in bytes.
        bytes: u64,
        /// Configured limit in bytes.
        limit: u64,
    },
}

impl DedispError {
    /// Shorthand constructor for [`DedispError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        DedispError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Shorthand constructor for [`DedispError::IncompatibleConfig`].
    pub fn incompatible(reason: impl Into<String>) -> Self {
        DedispError::IncompatibleConfig {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DedispError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DedispError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DedispError::IncompatibleConfig { reason } => {
                write!(f, "incompatible kernel configuration: {reason}")
            }
            DedispError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            DedispError::AllocationTooLarge { bytes, limit } => {
                write!(
                    f,
                    "allocation of {bytes} bytes exceeds the configured limit of {limit} bytes"
                )
            }
        }
    }
}

impl std::error::Error for DedispError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_parameter() {
        let e = DedispError::invalid("channels", "must be non-zero");
        assert_eq!(
            e.to_string(),
            "invalid parameter `channels`: must be non-zero"
        );
    }

    #[test]
    fn display_incompatible() {
        let e = DedispError::incompatible("tile exceeds problem");
        assert!(e.to_string().contains("tile exceeds problem"));
    }

    #[test]
    fn display_shape_mismatch() {
        let e = DedispError::ShapeMismatch {
            expected: "64x100".into(),
            found: "32x100".into(),
        };
        assert!(e.to_string().contains("expected 64x100"));
    }

    #[test]
    fn display_allocation() {
        let e = DedispError::AllocationTooLarge {
            bytes: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("10 bytes"));
        assert!(e.to_string().contains("limit of 5"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&DedispError::invalid("x", "y"));
    }
}
