//! Channelized input and dedispersed output buffers.
//!
//! Every data element is a single-precision float, following the paper.
//! The input is a `c × t` matrix (channel-major: each channel's samples
//! are contiguous, matching the coalesced access pattern of the kernels);
//! the output is a `d × s` matrix (trial-major: each dedispersed
//! time-series is contiguous).

use crate::error::{DedispError, Result};
use crate::plan::DedispersionPlan;

/// A channelized time-series: `channels × samples`, channel-major.
#[derive(Debug, Clone, PartialEq)]
pub struct InputBuffer {
    channels: usize,
    samples: usize,
    data: Vec<f32>,
}

impl InputBuffer {
    /// Allocates a zero-filled input buffer shaped for `plan`.
    pub fn for_plan(plan: &DedispersionPlan) -> Self {
        Self::zeroed(plan.channels(), plan.in_samples())
    }

    /// Allocates a constant-valued input buffer shaped for `plan`.
    /// Dedispersing a constant input yields `value × channels` in every
    /// output bin regardless of the delays — a useful oracle in tests.
    pub fn constant(plan: &DedispersionPlan, value: f32) -> Self {
        Self {
            channels: plan.channels(),
            samples: plan.in_samples(),
            data: vec![value; plan.channels() * plan.in_samples()],
        }
    }

    /// Allocates a zero-filled `channels × samples` buffer.
    pub fn zeroed(channels: usize, samples: usize) -> Self {
        Self {
            channels,
            samples,
            data: vec![0.0; channels * samples],
        }
    }

    /// Wraps an existing vector; its length must equal
    /// `channels × samples`.
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::ShapeMismatch`] on length mismatch.
    pub fn from_vec(channels: usize, samples: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != channels * samples {
            return Err(DedispError::ShapeMismatch {
                expected: format!("{channels}x{samples} = {} values", channels * samples),
                found: format!("{} values", data.len()),
            });
        }
        Ok(Self {
            channels,
            samples,
            data,
        })
    }

    /// Number of frequency channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Samples per channel.
    #[inline]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// One channel's contiguous sample row.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[inline]
    pub fn channel(&self, ch: usize) -> &[f32] {
        &self.data[ch * self.samples..(ch + 1) * self.samples]
    }

    /// Mutable access to one channel's samples.
    ///
    /// # Panics
    ///
    /// Panics if `ch` is out of range.
    #[inline]
    pub fn channel_mut(&mut self, ch: usize) -> &mut [f32] {
        &mut self.data[ch * self.samples..(ch + 1) * self.samples]
    }

    /// The whole buffer as a flat slice (channel-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole buffer as a flat mutable slice (channel-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Checks this buffer against a plan's expected input shape.
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::ShapeMismatch`] if the shape differs.
    pub fn check_plan(&self, plan: &DedispersionPlan) -> Result<()> {
        if self.channels != plan.channels() || self.samples != plan.in_samples() {
            return Err(DedispError::ShapeMismatch {
                expected: format!("input {}x{}", plan.channels(), plan.in_samples()),
                found: format!("input {}x{}", self.channels, self.samples),
            });
        }
        Ok(())
    }
}

/// A set of dedispersed time-series: `trials × samples`, trial-major.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputBuffer {
    trials: usize,
    samples: usize,
    data: Vec<f32>,
}

impl OutputBuffer {
    /// Allocates a zero-filled output buffer shaped for `plan`.
    pub fn for_plan(plan: &DedispersionPlan) -> Self {
        Self::zeroed(plan.trials(), plan.out_samples())
    }

    /// Allocates a zero-filled `trials × samples` buffer.
    pub fn zeroed(trials: usize, samples: usize) -> Self {
        Self {
            trials,
            samples,
            data: vec![0.0; trials * samples],
        }
    }

    /// Number of trial DMs.
    #[inline]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Samples per dedispersed series.
    #[inline]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// One trial's contiguous dedispersed time-series.
    ///
    /// # Panics
    ///
    /// Panics if `trial` is out of range.
    #[inline]
    pub fn series(&self, trial: usize) -> &[f32] {
        &self.data[trial * self.samples..(trial + 1) * self.samples]
    }

    /// Mutable access to one trial's series.
    ///
    /// # Panics
    ///
    /// Panics if `trial` is out of range.
    #[inline]
    pub fn series_mut(&mut self, trial: usize) -> &mut [f32] {
        &mut self.data[trial * self.samples..(trial + 1) * self.samples]
    }

    /// The whole buffer as a flat slice (trial-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole buffer as a flat mutable slice (trial-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Resets every output bin to zero, allowing buffer reuse across
    /// invocations without reallocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Checks this buffer against a plan's expected output shape.
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::ShapeMismatch`] if the shape differs.
    pub fn check_plan(&self, plan: &DedispersionPlan) -> Result<()> {
        if self.trials != plan.trials() || self.samples != plan.out_samples() {
            return Err(DedispError::ShapeMismatch {
                expected: format!("output {}x{}", plan.trials(), plan.out_samples()),
                found: format!("output {}x{}", self.trials, self.samples),
            });
        }
        Ok(())
    }

    /// Maximum absolute difference to another output buffer (shape must
    /// match). Useful when comparing kernel implementations.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &OutputBuffer) -> f32 {
        assert_eq!(self.trials, other.trials, "trial count mismatch");
        assert_eq!(self.samples, other.samples, "sample count mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::DmGrid;
    use crate::freq::FrequencyBand;

    fn plan() -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(1420.0, 0.29, 8).unwrap())
            .dm_grid(DmGrid::paper_grid(4).unwrap())
            .sample_rate(100)
            .build()
            .unwrap()
    }

    #[test]
    fn input_shapes_for_plan() {
        let p = plan();
        let buf = InputBuffer::for_plan(&p);
        assert_eq!(buf.channels(), 8);
        assert_eq!(buf.samples(), p.in_samples());
        buf.check_plan(&p).unwrap();
    }

    #[test]
    fn constant_input() {
        let p = plan();
        let buf = InputBuffer::constant(&p, 2.5);
        assert!(buf.as_slice().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn channel_rows_are_disjoint() {
        let mut buf = InputBuffer::zeroed(3, 4);
        buf.channel_mut(1).fill(7.0);
        assert!(buf.channel(0).iter().all(|&v| v == 0.0));
        assert!(buf.channel(1).iter().all(|&v| v == 7.0));
        assert!(buf.channel(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(InputBuffer::from_vec(2, 3, vec![0.0; 6]).is_ok());
        assert!(InputBuffer::from_vec(2, 3, vec![0.0; 5]).is_err());
    }

    #[test]
    fn input_check_plan_rejects_wrong_shape() {
        let p = plan();
        let buf = InputBuffer::zeroed(8, 10);
        assert!(buf.check_plan(&p).is_err());
    }

    #[test]
    fn output_series_disjoint_and_clear() {
        let mut out = OutputBuffer::zeroed(3, 5);
        out.series_mut(2).fill(1.0);
        assert!(out.series(0).iter().all(|&v| v == 0.0));
        assert!(out.series(2).iter().all(|&v| v == 1.0));
        out.clear();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn output_check_plan() {
        let p = plan();
        let out = OutputBuffer::for_plan(&p);
        out.check_plan(&p).unwrap();
        let wrong = OutputBuffer::zeroed(5, 100);
        assert!(wrong.check_plan(&p).is_err());
    }

    #[test]
    fn max_abs_diff() {
        let mut a = OutputBuffer::zeroed(2, 2);
        let mut b = OutputBuffer::zeroed(2, 2);
        a.series_mut(0)[0] = 1.0;
        b.series_mut(0)[0] = 3.5;
        assert_eq!(a.max_abs_diff(&b), 2.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "trial count mismatch")]
    fn max_abs_diff_shape_panics() {
        let a = OutputBuffer::zeroed(2, 2);
        let b = OutputBuffer::zeroed(3, 2);
        let _ = a.max_abs_diff(&b);
    }
}
