//! Dispersion delays (Eq. 1 of the paper) and precomputed delay tables.
//!
//! The delay of a frequency component `f_i` relative to the highest
//! frequency `f_h`, for a given dispersion measure, is
//!
//! ```text
//! k ≈ 4150 × DM × (1/f_i² − 1/f_h²)    [s; f in MHz; DM in pc/cm³]
//! ```
//!
//! Delays can be computed in advance and therefore do not contribute to
//! the algorithm's complexity (paper, Section III-A). The [`DelayTable`]
//! stores the per-(trial, channel) delay in integer samples; it also
//! exposes the *delay spread* across a range of trials, which quantifies
//! the data-reuse available to a tiled kernel (Section III-B) and is the
//! key input to the accelerator cost model.

use serde::{Deserialize, Serialize};

use crate::dm::DmGrid;
use crate::error::{DedispError, Result};
use crate::freq::FrequencyBand;

/// The dispersion constant used by the paper, in s·MHz²·cm³/pc.
///
/// The physically precise value is ≈ 4148.808; the paper (Eq. 1) rounds it
/// to 4,150 and we follow the paper.
pub const DISPERSION_CONSTANT: f64 = 4150.0;

/// Dispersion delay in **seconds** of frequency `f_mhz` relative to the
/// reference (highest) frequency `f_ref_mhz`, for dispersion measure
/// `dm` (pc/cm³). This is Eq. 1 of the paper.
///
/// Frequencies must be positive; `f_mhz <= f_ref_mhz` yields a
/// non-negative delay.
#[inline]
pub fn delay_seconds(dm: f64, f_mhz: f64, f_ref_mhz: f64) -> f64 {
    DISPERSION_CONSTANT * dm * (1.0 / (f_mhz * f_mhz) - 1.0 / (f_ref_mhz * f_ref_mhz))
}

/// Dispersion delay in **samples** (rounded to nearest) at a given
/// sampling rate in samples/second.
#[inline]
pub fn delay_samples(dm: f64, f_mhz: f64, f_ref_mhz: f64, sample_rate: u32) -> usize {
    let k = delay_seconds(dm, f_mhz, f_ref_mhz);
    debug_assert!(k >= -0.5, "negative delay: f_mhz above reference?");
    (k * f64::from(sample_rate)).round().max(0.0) as usize
}

/// Precomputed delays, in samples, for every (trial DM, channel) pair.
///
/// Layout: row-major by trial (`delays[trial * channels + channel]`), so a
/// single trial's delays across channels are contiguous — matching the
/// access order of the inner loop of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayTable {
    channels: usize,
    trials: usize,
    sample_rate: u32,
    delays: Vec<u32>,
}

impl DelayTable {
    /// Builds a delay table from a band, a DM grid and a sampling rate.
    ///
    /// Delays are measured relative to the top edge of the band, using
    /// each channel's bottom edge as its representative frequency (the
    /// most conservative choice: it upper-bounds intra-channel smearing).
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::InvalidParameter`] if `sample_rate` is zero.
    pub fn build(band: &FrequencyBand, grid: &DmGrid, sample_rate: u32) -> Result<Self> {
        if sample_rate == 0 {
            return Err(DedispError::invalid("sample_rate", "must be non-zero"));
        }
        let channels = band.channels();
        let trials = grid.count();
        let f_ref = band.high_mhz();
        let mut delays = Vec::with_capacity(channels * trials);
        for dm in grid.values() {
            for ch in 0..channels {
                let d = delay_samples(dm, band.channel_mhz(ch), f_ref, sample_rate);
                delays.push(u32::try_from(d).map_err(|_| {
                    DedispError::invalid(
                        "delay",
                        format!("delay of {d} samples overflows u32 (dm={dm})"),
                    )
                })?);
            }
        }
        Ok(Self {
            channels,
            trials,
            sample_rate,
            delays,
        })
    }

    /// Builds an all-zero delay table with the same shape, used by the
    /// paper's third experiment (Section IV-C): every trial DM is treated
    /// as 0, exposing theoretically perfect data-reuse to the kernel.
    pub fn zeros(channels: usize, trials: usize, sample_rate: u32) -> Result<Self> {
        if channels == 0 {
            return Err(DedispError::invalid("channels", "must be non-zero"));
        }
        if trials == 0 {
            return Err(DedispError::invalid("trials", "must be non-zero"));
        }
        if sample_rate == 0 {
            return Err(DedispError::invalid("sample_rate", "must be non-zero"));
        }
        Ok(Self {
            channels,
            trials,
            sample_rate,
            delays: vec![0; channels * trials],
        })
    }

    /// Number of frequency channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of trial DMs.
    #[inline]
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Sampling rate the delays were quantized at.
    #[inline]
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Delay in samples for `(trial, channel)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the indices are out of range.
    #[inline]
    pub fn delay(&self, trial: usize, channel: usize) -> usize {
        debug_assert!(trial < self.trials && channel < self.channels);
        self.delays[trial * self.channels + channel] as usize
    }

    /// The delays of one trial across all channels, lowest channel first.
    #[inline]
    pub fn trial_row(&self, trial: usize) -> &[u32] {
        &self.delays[trial * self.channels..(trial + 1) * self.channels]
    }

    /// The largest delay in the table — determines how many extra input
    /// samples (`t − s`) are needed to dedisperse one second of data.
    pub fn max_delay(&self) -> usize {
        self.delays.iter().copied().max().unwrap_or(0) as usize
    }

    /// Delay spread of `channel` across the trial range
    /// `[trial_lo, trial_hi]` (inclusive): the number of *extra* input
    /// samples a tile covering those trials must read for this channel,
    /// relative to a single-trial tile.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if indices are out of range or reversed.
    pub fn spread(&self, channel: usize, trial_lo: usize, trial_hi: usize) -> usize {
        debug_assert!(trial_lo <= trial_hi && trial_hi < self.trials);
        let lo = self.delay(trial_lo, channel);
        let hi = self.delay(trial_hi, channel);
        debug_assert!(hi >= lo, "delays must be monotone in DM");
        hi - lo
    }

    /// The per-trial delay gradient of each channel, in samples per trial
    /// step, measured between the first and last trial (exact for a linear
    /// DM grid, since Eq. 1 is linear in DM).
    ///
    /// This is the quantity the accelerator cost model consumes: a tile of
    /// `D` consecutive trials must read `≈ gradient × (D − 1)` extra
    /// samples per channel.
    pub fn gradient_samples_per_trial(&self) -> Vec<f64> {
        let mut grad = vec![0.0; self.channels];
        if self.trials < 2 {
            return grad;
        }
        let span = (self.trials - 1) as f64;
        for (ch, g) in grad.iter_mut().enumerate() {
            *g = (self.delay(self.trials - 1, ch) as f64 - self.delay(0, ch) as f64) / span;
        }
        grad
    }

    /// Returns `true` if every delay is zero (the perfect-reuse scenario).
    pub fn is_zero(&self) -> bool {
        self.delays.iter().all(|&d| d == 0)
    }

    /// Total size of the table in bytes (as stored on an accelerator).
    pub fn size_bytes(&self) -> usize {
        self.delays.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apertif_band() -> FrequencyBand {
        FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap()
    }

    fn lofar_band() -> FrequencyBand {
        FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap()
    }

    #[test]
    fn delay_seconds_matches_hand_computation() {
        // k = 4150 * 256 * (1/1420^2 - 1/1720^2) ≈ 0.1677 s
        let k = delay_seconds(256.0, 1420.0, 1720.0);
        assert!((k - 0.16768).abs() < 1e-3, "got {k}");
    }

    #[test]
    fn delay_zero_dm_is_zero() {
        assert_eq!(delay_seconds(0.0, 1420.0, 1720.0), 0.0);
        assert_eq!(delay_samples(0.0, 138.0, 144.0, 200_000), 0);
    }

    #[test]
    fn delay_at_reference_frequency_is_zero() {
        assert_eq!(delay_samples(100.0, 1720.0, 1720.0, 20_000), 0);
    }

    #[test]
    fn lofar_delays_much_larger_than_apertif() {
        // At equal DM, low-frequency observations smear far more.
        let ap = delay_seconds(10.0, 1420.0, 1720.0);
        let lo = delay_seconds(10.0, 138.0, 144.0);
        assert!(lo > 20.0 * ap, "lofar={lo}, apertif={ap}");
    }

    #[test]
    fn table_shape_and_monotonicity() {
        let band = apertif_band();
        let grid = DmGrid::paper_grid(64).unwrap();
        let table = DelayTable::build(&band, &grid, 20_000).unwrap();
        assert_eq!(table.channels(), 1024);
        assert_eq!(table.trials(), 64);
        // Monotone non-decreasing in DM for a fixed channel.
        for ch in [0, 100, 1023] {
            for t in 1..64 {
                assert!(table.delay(t, ch) >= table.delay(t - 1, ch));
            }
        }
        // Monotone non-increasing in channel (higher freq => smaller delay).
        for t in [1, 32, 63] {
            for ch in 1..1024 {
                assert!(table.delay(t, ch) <= table.delay(t, ch - 1));
            }
        }
        // Highest channel at trial 0 has zero delay.
        assert_eq!(table.delay(0, 1023), 0);
    }

    #[test]
    fn trial_row_is_contiguous_view() {
        let band = lofar_band();
        let grid = DmGrid::paper_grid(8).unwrap();
        let table = DelayTable::build(&band, &grid, 200_000).unwrap();
        let row = table.trial_row(5);
        assert_eq!(row.len(), 32);
        for (ch, &d) in row.iter().enumerate() {
            assert_eq!(d as usize, table.delay(5, ch));
        }
    }

    #[test]
    fn max_delay_is_lowest_channel_highest_dm() {
        let band = lofar_band();
        let grid = DmGrid::paper_grid(16).unwrap();
        let table = DelayTable::build(&band, &grid, 200_000).unwrap();
        assert_eq!(table.max_delay(), table.delay(15, 0));
        assert!(table.max_delay() > 0);
    }

    #[test]
    fn spread_and_gradient_agree() {
        let band = apertif_band();
        let grid = DmGrid::paper_grid(32).unwrap();
        let table = DelayTable::build(&band, &grid, 20_000).unwrap();
        let grad = table.gradient_samples_per_trial();
        for ch in [0usize, 512, 1023] {
            let s = table.spread(ch, 0, 31) as f64;
            let approx = grad[ch] * 31.0;
            assert!((s - approx).abs() < 1e-9, "ch={ch}: {s} vs {approx}");
        }
        // Gradient decreases with channel (higher frequency => less smear).
        assert!(grad[0] > grad[1023]);
    }

    #[test]
    fn zeros_table_reports_zero() {
        let table = DelayTable::zeros(32, 16, 1000).unwrap();
        assert!(table.is_zero());
        assert_eq!(table.max_delay(), 0);
        assert_eq!(table.spread(3, 0, 15), 0);
        assert!(table.gradient_samples_per_trial().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn real_table_is_not_zero() {
        let band = lofar_band();
        let grid = DmGrid::paper_grid(4).unwrap();
        let table = DelayTable::build(&band, &grid, 200_000).unwrap();
        assert!(!table.is_zero());
    }

    #[test]
    fn size_bytes() {
        let table = DelayTable::zeros(8, 4, 100).unwrap();
        assert_eq!(table.size_bytes(), 8 * 4 * 4);
    }

    #[test]
    fn rejects_zero_sample_rate() {
        let band = apertif_band();
        let grid = DmGrid::paper_grid(4).unwrap();
        assert!(DelayTable::build(&band, &grid, 0).is_err());
        assert!(DelayTable::zeros(8, 4, 0).is_err());
        assert!(DelayTable::zeros(0, 4, 100).is_err());
        assert!(DelayTable::zeros(8, 0, 100).is_err());
    }
}
