//! Run-time OpenCL source generation.
//!
//! The paper's implementation generates the OpenCL C source of a kernel
//! *after* the four parameters are configured (Section III-B), fully
//! unrolling the per-work-item element loops so accumulators live in
//! registers. This module reproduces that code generator: it emits, for
//! any [`KernelConfig`] and plan shape, the specialized OpenCL C source a
//! driver would compile. The host kernels in [`crate::kernel`] execute
//! the same decomposition natively, so the generated source is both
//! documentation of the mapping and a drop-in artifact for anyone wiring
//! this library to a real OpenCL runtime.

use std::fmt::Write as _;

use crate::config::KernelConfig;
use crate::error::Result;
use crate::plan::DedispersionPlan;

/// Generates the specialized OpenCL C source for `config` applied to
/// `plan`.
///
/// The emitted kernel follows the paper's structure:
/// * a two-dimensional NDRange with `wi_time × wi_dm` work-items per
///   work-group;
/// * each work-item owns `el_time × el_dm` register accumulators, fully
///   unrolled;
/// * work-items cooperate to stage the tile's shared input span into
///   `__local` memory once per channel (data-reuse), when the DM tile
///   spans more than one trial;
/// * coalesced, aligned output writes.
///
/// # Errors
///
/// Returns an error if `config` is incompatible with the plan.
pub fn generate_opencl(plan: &DedispersionPlan, config: &KernelConfig) -> Result<String> {
    config.validate_for(plan.out_samples(), plan.trials())?;

    let wi_time = config.wi_time();
    let wi_dm = config.wi_dm();
    let el_time = config.el_time();
    let el_dm = config.el_dm();
    let tile_time = config.tile_time();
    let tile_dm = config.tile_dm();
    let channels = plan.channels();
    let out_samples = plan.out_samples();
    let in_samples = plan.in_samples();
    let use_local = tile_dm > 1;

    let mut src = String::with_capacity(4096);
    let w = &mut src;

    let _ = writeln!(w, "// Auto-generated dedispersion kernel");
    let _ = writeln!(
        w,
        "// config: wi_time={wi_time} wi_dm={wi_dm} el_time={el_time} el_dm={el_dm}"
    );
    let _ = writeln!(
        w,
        "// plan: channels={channels} out_samples={out_samples} in_samples={in_samples} trials={}",
        plan.trials()
    );
    let _ = writeln!(w, "#define CHANNELS {channels}u");
    let _ = writeln!(w, "#define IN_SAMPLES {in_samples}u");
    let _ = writeln!(w, "#define OUT_SAMPLES {out_samples}u");
    let _ = writeln!(w, "#define TILE_TIME {tile_time}u");
    let _ = writeln!(w, "#define TILE_DM {tile_dm}u");
    let _ = writeln!(w);
    let _ = writeln!(
        w,
        "__kernel __attribute__((reqd_work_group_size({wi_time}, {wi_dm}, 1)))"
    );
    let _ = writeln!(w, "void dedisperse(__global const float * restrict input,");
    let _ = writeln!(w, "                __global float * restrict output,");
    let _ = writeln!(
        w,
        "                __global const uint * restrict delays) {{"
    );
    let _ = writeln!(
        w,
        "  const uint sample0 = (get_group_id(0) * TILE_TIME) + get_local_id(0);"
    );
    let _ = writeln!(
        w,
        "  const uint dm0 = (get_group_id(1) * TILE_DM) + get_local_id(1);"
    );

    // Register accumulators, fully unrolled as in the paper.
    for ed in 0..el_dm {
        for et in 0..el_time {
            let _ = writeln!(w, "  float acc_{ed}_{et} = 0.0f;");
        }
    }

    if use_local {
        let _ = writeln!(w);
        let _ = writeln!(
            w,
            "  // Shared staging buffer: the tile's input span for one channel."
        );
        let _ = writeln!(w, "  __local float staged[LOCAL_SPAN];");
    }

    let _ = writeln!(w);
    let _ = writeln!(w, "  for (uint ch = 0; ch < CHANNELS; ch++) {{");
    if use_local {
        let _ = writeln!(
            w,
            "    const uint base = delays[(get_group_id(1) * TILE_DM) * CHANNELS + ch];"
        );
        let _ = writeln!(
            w,
            "    const uint span = TILE_TIME + (delays[(get_group_id(1) * TILE_DM + TILE_DM - 1u) * CHANNELS + ch] - base);"
        );
        let _ = writeln!(
            w,
            "    for (uint i = get_local_id(1) * {wi_time}u + get_local_id(0); i < span; i += {}u)",
            wi_time * wi_dm
        );
        let _ = writeln!(
            w,
            "      staged[i] = input[ch * IN_SAMPLES + get_group_id(0) * TILE_TIME + base + i];"
        );
        let _ = writeln!(w, "    barrier(CLK_LOCAL_MEM_FENCE);");
    }
    for ed in 0..el_dm {
        let _ = writeln!(
            w,
            "    const uint shift_{ed} = delays[(dm0 + {}u) * CHANNELS + ch]{};",
            ed * wi_dm,
            if use_local { " - base" } else { "" }
        );
        for et in 0..el_time {
            let idx = format!("sample0 + {}u + shift_{ed}", et * wi_time);
            if use_local {
                let _ = writeln!(
                    w,
                    "    acc_{ed}_{et} += staged[{idx} - (get_group_id(0) * TILE_TIME)];"
                );
            } else {
                let _ = writeln!(w, "    acc_{ed}_{et} += input[ch * IN_SAMPLES + {idx}];");
            }
        }
    }
    if use_local {
        let _ = writeln!(w, "    barrier(CLK_LOCAL_MEM_FENCE);");
    }
    let _ = writeln!(w, "  }}");
    let _ = writeln!(w);
    let _ = writeln!(w, "  // Coalesced, aligned output writes.");
    for ed in 0..el_dm {
        for et in 0..el_time {
            let _ = writeln!(
                w,
                "  output[(dm0 + {}u) * OUT_SAMPLES + sample0 + {}u] = acc_{ed}_{et};",
                ed * wi_dm,
                et * wi_time
            );
        }
    }
    let _ = writeln!(w, "}}");

    Ok(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::DmGrid;
    use crate::freq::FrequencyBand;

    fn plan() -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(1420.0, 0.29, 64).unwrap())
            .dm_grid(DmGrid::paper_grid(32).unwrap())
            .sample_rate(1000)
            .build()
            .unwrap()
    }

    #[test]
    fn generates_unrolled_accumulators() {
        let p = plan();
        let config = KernelConfig::new(8, 4, 3, 2).unwrap();
        let src = generate_opencl(&p, &config).unwrap();
        // One accumulator declaration per (el_dm, el_time) pair.
        for ed in 0..2 {
            for et in 0..3 {
                assert!(src.contains(&format!("float acc_{ed}_{et} = 0.0f;")));
            }
        }
        // One output write per accumulator.
        assert_eq!(src.matches("output[(dm0 + ").count(), 6);
    }

    #[test]
    fn local_memory_only_when_dm_tile_spans_trials() {
        let p = plan();
        let multi = generate_opencl(&p, &KernelConfig::new(8, 4, 1, 2).unwrap()).unwrap();
        assert!(multi.contains("__local float staged"));
        assert!(multi.contains("barrier(CLK_LOCAL_MEM_FENCE)"));

        let single = generate_opencl(&p, &KernelConfig::new(64, 1, 2, 1).unwrap()).unwrap();
        assert!(!single.contains("__local"));
        assert!(!single.contains("barrier"));
    }

    #[test]
    fn embeds_workgroup_shape() {
        let p = plan();
        let src = generate_opencl(&p, &KernelConfig::new(32, 2, 1, 1).unwrap()).unwrap();
        assert!(src.contains("reqd_work_group_size(32, 2, 1)"));
        assert!(src.contains("#define CHANNELS 64u"));
        assert!(src.contains("#define OUT_SAMPLES 1000u"));
    }

    #[test]
    fn rejects_incompatible_config() {
        let p = plan();
        // DM tile (64) larger than the 32 trials.
        let config = KernelConfig::new(8, 8, 1, 8).unwrap();
        assert!(generate_opencl(&p, &config).is_err());
    }

    #[test]
    fn different_configs_differ() {
        let p = plan();
        let a = generate_opencl(&p, &KernelConfig::new(8, 4, 1, 1).unwrap()).unwrap();
        let b = generate_opencl(&p, &KernelConfig::new(8, 4, 2, 1).unwrap()).unwrap();
        assert_ne!(a, b);
    }
}
