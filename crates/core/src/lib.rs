//! # dedisp-core — auto-tunable incoherent dedispersion
//!
//! This crate implements the primary contribution of *Sclocco et al.,
//! "Auto-Tuning Dedispersion for Many-Core Accelerators" (IPDPS 2014)*:
//! a dedispersion algorithm whose parallel decomposition is governed by
//! four user-controlled parameters, designed to be specialized at run time
//! and tuned automatically per platform and per observational setup.
//!
//! ## Background
//!
//! Radio signals from impulsive astrophysical sources (pulsars, fast radio
//! bursts) are *dispersed* by free electrons in the interstellar medium:
//! lower frequencies arrive progressively later. The delay of a frequency
//! component `f_i` relative to the highest observed frequency `f_h` is
//!
//! ```text
//! k ≈ 4150 × DM × (1/f_i² − 1/f_h²)   [seconds, f in MHz]      (Eq. 1)
//! ```
//!
//! where the *dispersion measure* (DM) is the integrated electron column
//! density along the line of sight. Dedispersion shifts each frequency
//! channel back by its delay and integrates over channels. When searching
//! for unknown sources the DM is unknown, so the input must be dedispersed
//! for thousands of trial DMs — a brute-force, data-intensive search.
//!
//! ## Crate layout
//!
//! * [`freq`] — frequency bands and channelization.
//! * [`dm`] — trial-DM grids.
//! * [`delay`] — Eq. 1 and precomputed per-(channel, DM) delay tables.
//! * [`config`] — [`KernelConfig`]: the four tunable parameters.
//! * [`buffer`] — channelized input and dedispersed output matrices.
//! * [`plan`] — [`DedispersionPlan`]: everything needed to execute.
//! * [`kernel`] — the sequential reference (Algorithm 1 of the paper), the
//!   configuration-specialized tiled kernel, and the rayon-parallel kernel.
//! * [`ai`] — arithmetic-intensity analysis (Eqs. 2 and 3) and roofline
//!   helpers, formalizing the paper's memory-boundedness argument.
//! * [`codegen`] — run-time generation of the OpenCL C source that the
//!   paper's implementation would emit for a given configuration.
//! * [`stream`] — the rolling input window for continuous observations.
//!
//! ## Quick example
//!
//! ```
//! use dedisp_core::prelude::*;
//!
//! // A small observational setup: 64 channels of 0.29 MHz above 1420 MHz,
//! // 1000 samples per second, 32 trial DMs spaced 0.25 pc/cm³.
//! let band = FrequencyBand::new(1420.0, 0.29, 64).unwrap();
//! let dms = DmGrid::new(0.0, 0.25, 32).unwrap();
//! let plan = DedispersionPlan::builder()
//!     .band(band)
//!     .sample_rate(1000)
//!     .dm_grid(dms)
//!     .build()
//!     .unwrap();
//!
//! let input = InputBuffer::constant(&plan, 1.0);
//! let mut output = OutputBuffer::for_plan(&plan);
//! let config = KernelConfig::new(8, 4, 2, 2).unwrap();
//! TiledKernel::new(config).dedisperse(&plan, &input, &mut output).unwrap();
//!
//! // Constant input of 1.0 dedisperses to the channel count in every bin.
//! assert!(output.as_slice().iter().all(|&v| (v - 64.0).abs() < 1e-3));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ai;
pub mod buffer;
pub mod codegen;
pub mod config;
pub mod delay;
pub mod dm;
pub mod error;
pub mod freq;
pub mod kernel;
pub mod plan;
pub mod stream;

pub use ai::{ArithmeticIntensity, Roofline};
pub use buffer::{InputBuffer, OutputBuffer};
pub use config::KernelConfig;
pub use delay::{DelayTable, DISPERSION_CONSTANT};
pub use dm::DmGrid;
pub use error::{DedispError, Result};
pub use freq::FrequencyBand;
pub use kernel::{
    Dedisperser, NaiveKernel, ParallelKernel, SubbandConfig, SubbandKernel, TiledKernel,
};
pub use plan::{DedispersionPlan, PlanBuilder};
pub use stream::StreamWindow;

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::ai::{ArithmeticIntensity, Roofline};
    pub use crate::buffer::{InputBuffer, OutputBuffer};
    pub use crate::config::KernelConfig;
    pub use crate::delay::{DelayTable, DISPERSION_CONSTANT};
    pub use crate::dm::DmGrid;
    pub use crate::error::{DedispError, Result};
    pub use crate::freq::FrequencyBand;
    pub use crate::kernel::{
        Dedisperser, NaiveKernel, ParallelKernel, SubbandConfig, SubbandKernel, TiledKernel,
    };
    pub use crate::plan::{DedispersionPlan, PlanBuilder};
    pub use crate::stream::StreamWindow;
}
