//! Trial dispersion-measure grids.
//!
//! When searching for unknown sources, the DM is unknown a priori and the
//! signal is dedispersed for thousands of trial DMs. The paper uses a
//! linear grid starting at 0 pc/cm³ with a step of 0.25 pc/cm³ in both
//! observational setups; the number of trials (`d`, the *input instance*)
//! is swept over powers of two between 2 and 4,096.

use serde::{Deserialize, Serialize};

use crate::error::{DedispError, Result};

/// A linear grid of trial dispersion measures, in pc/cm³.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmGrid {
    first: f64,
    step: f64,
    count: usize,
}

impl DmGrid {
    /// Creates a grid of `count` trials: `first, first+step, …`.
    ///
    /// # Errors
    ///
    /// Returns [`DedispError::InvalidParameter`] if `first` is negative or
    /// non-finite, `step` is not strictly positive, or `count` is zero.
    pub fn new(first: f64, step: f64, count: usize) -> Result<Self> {
        if !(first.is_finite() && first >= 0.0) {
            return Err(DedispError::invalid(
                "first",
                format!("must be non-negative and finite, got {first}"),
            ));
        }
        if !(step.is_finite() && step > 0.0) {
            return Err(DedispError::invalid(
                "step",
                format!("must be positive and finite, got {step}"),
            ));
        }
        if count == 0 {
            return Err(DedispError::invalid("count", "must be non-zero"));
        }
        Ok(Self { first, step, count })
    }

    /// The paper's standard grid: first trial 0 pc/cm³, step 0.25 pc/cm³.
    ///
    /// # Errors
    ///
    /// Returns an error if `count` is zero.
    pub fn paper_grid(count: usize) -> Result<Self> {
        Self::new(0.0, 0.25, count)
    }

    /// Number of trial DMs (`d` in the paper).
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The first (lowest) trial DM.
    #[inline]
    pub fn first(&self) -> f64 {
        self.first
    }

    /// The increment between successive trials.
    #[inline]
    pub fn step(&self) -> f64 {
        self.step
    }

    /// The value of trial `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.count()`.
    #[inline]
    pub fn dm(&self, i: usize) -> f64 {
        assert!(
            i < self.count,
            "trial index {i} out of range ({} trials)",
            self.count
        );
        self.first + self.step * i as f64
    }

    /// The largest trial DM in the grid.
    #[inline]
    pub fn max_dm(&self) -> f64 {
        self.dm(self.count - 1)
    }

    /// Iterates over all trial DM values in ascending order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.count).map(move |i| self.dm(i))
    }

    /// Index of the trial closest to `dm`, clamped to the grid.
    pub fn nearest_trial(&self, dm: f64) -> usize {
        if dm <= self.first {
            return 0;
        }
        let idx = ((dm - self.first) / self.step).round() as usize;
        idx.min(self.count - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_values() {
        let grid = DmGrid::paper_grid(8).unwrap();
        assert_eq!(grid.count(), 8);
        assert_eq!(grid.first(), 0.0);
        assert_eq!(grid.step(), 0.25);
        assert!((grid.dm(4) - 1.0).abs() < 1e-12);
        assert!((grid.max_dm() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn values_iterator_matches_indexing() {
        let grid = DmGrid::new(1.0, 0.5, 5).unwrap();
        let vals: Vec<f64> = grid.values().collect();
        assert_eq!(vals.len(), 5);
        for (i, v) in vals.iter().enumerate() {
            assert!((v - grid.dm(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_trial_rounds_and_clamps() {
        let grid = DmGrid::paper_grid(8).unwrap(); // 0.0 .. 1.75
        assert_eq!(grid.nearest_trial(0.0), 0);
        assert_eq!(grid.nearest_trial(0.10), 0);
        assert_eq!(grid.nearest_trial(0.13), 1);
        assert_eq!(grid.nearest_trial(1.0), 4);
        assert_eq!(grid.nearest_trial(100.0), 7);
        assert_eq!(grid.nearest_trial(-5.0), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DmGrid::new(-1.0, 0.25, 4).is_err());
        assert!(DmGrid::new(f64::NAN, 0.25, 4).is_err());
        assert!(DmGrid::new(0.0, 0.0, 4).is_err());
        assert!(DmGrid::new(0.0, -0.25, 4).is_err());
        assert!(DmGrid::new(0.0, 0.25, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn trial_index_out_of_range_panics() {
        let grid = DmGrid::paper_grid(4).unwrap();
        let _ = grid.dm(4);
    }
}
