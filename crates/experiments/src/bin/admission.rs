//! Per-shard vs coordinated grid admission, head to head.
//!
//! The §V-D fleet sizing assumes load spreads evenly over the devices;
//! a real grid front-end can be skewed by its routing policy. This
//! binary runs the same survey through both [`GridAdmission`] modes and
//! shows what the coordinated controller buys:
//!
//! * **Skewed load** — static-hash routing piles half of each tick on
//!   a one-device shard. Per-shard admission sheds that shard to the
//!   floor and still misses deadlines; the coordinated planner reroutes
//!   by remaining headroom and picks one fleet-wide shed level, and the
//!   misses disappear.
//! * **Whole-shard kill** — when a shard dies outright, the planner's
//!   Pareto rule keeps it from making anything worse: the survivors
//!   behave exactly as they would under per-shard admission.

use dedisp_fleet::{
    Grid, GridAdmission, GridFaultPlan, GridReport, GridRun, ResolvedFleet, SurveyLoad,
    TelemetryEvent,
};
use serde::Serialize;

/// The machine-readable artifact `--json` writes: both scenarios,
/// both admission modes.
#[derive(Serialize)]
struct AdmissionComparison {
    /// Skewed-load scenario, per-shard admission.
    skewed_per_shard: GridReport,
    /// Skewed-load scenario, coordinated admission.
    skewed_coordinated: GridReport,
    /// Whole-shard-kill scenario, per-shard admission.
    kill_per_shard: GridReport,
    /// Whole-shard-kill scenario, coordinated admission.
    kill_coordinated: GridReport,
}

/// The paper's measured HD7970 rate (Section V-D).
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

/// Trial DMs per beam (the paper's Apertif instance).
const TRIALS: usize = 2000;

/// Seconds of observation each scenario simulates.
const TICKS: usize = 4;

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

fn run(
    shards: &[ResolvedFleet],
    load: &SurveyLoad,
    faults: &GridFaultPlan,
    admission: GridAdmission,
) -> GridRun {
    Grid::session(shards)
        .admission(admission)
        .load(load)
        .faults(faults)
        .run()
        .expect("admission comparison run completes")
}

fn worst_shard_misses(run: &GridRun) -> usize {
    run.report
        .shards
        .iter()
        .map(|s| s.deadline_misses)
        .max()
        .unwrap_or(0)
}

fn summarize(label: &str, run: &GridRun) {
    let r = &run.report;
    println!(
        "{label:>12}: completed {:>3} | degraded {:>3} | missed {:>2} | shed whole {:>2} \
         | shed DMs {:>6} | rebalanced {:>2}",
        r.completed, r.degraded, r.deadline_misses, r.shed_whole, r.total_shed_trials, r.rehomed
    );
    for (s, shard) in r.shards.iter().enumerate() {
        println!(
            "{:>14} shard {s}: {} devices, missed {:>2}, shed {:>6} trial DMs",
            "",
            shard.devices.len(),
            shard.deadline_misses,
            shard.total_shed_trials
        );
    }
    assert!(r.conservation_ok(), "{label}: merged ledger must conserve");
}

fn main() {
    // --- Scenario 1: skewed load -------------------------------------
    // Shard 0 is one HD7970 (~9 beams/s); shard 1 is eight. Static-hash
    // routing splits every tick down the middle regardless, so shard 0
    // sees more than twice what it can sustain.
    let skewed = vec![
        ResolvedFleet::synthetic(TRIALS, &[MEASURED_SECONDS_PER_BEAM]),
        ResolvedFleet::synthetic(TRIALS, &[MEASURED_SECONDS_PER_BEAM; 8]),
    ];
    let load = SurveyLoad::custom(TRIALS, 40, TICKS);
    headline("skewed load: 40 beams/s static-hashed onto a 1-device and an 8-device shard");
    let none = GridFaultPlan::none();
    let per_shard = run(&skewed, &load, &none, GridAdmission::PerShard);
    let coordinated = run(&skewed, &load, &none, GridAdmission::Coordinated);
    summarize("per-shard", &per_shard);
    summarize("coordinated", &coordinated);

    assert!(
        per_shard.report.deadline_misses > 0,
        "the skew must actually hurt per-shard admission"
    );
    assert!(
        worst_shard_misses(&coordinated) < worst_shard_misses(&per_shard),
        "coordination must strictly reduce the worst shard's miss count"
    );
    assert!(
        coordinated.report.total_shed_trials <= per_shard.report.total_shed_trials,
        "the Pareto rule never trades misses for extra shedding"
    );
    let rebalances = coordinated
        .events
        .iter()
        .filter(|e| e.shard.is_none() && matches!(e.event, TelemetryEvent::Rebalance { .. }))
        .count();
    println!(
        "\ncoordination moved {rebalances} beams off the overloaded shard \
         (worst-shard misses {} -> {})",
        worst_shard_misses(&per_shard),
        worst_shard_misses(&coordinated)
    );

    // The telemetry stream doubles as the operator view: fold each
    // shard's stream into a point-in-time snapshot.
    for (s, snapshot) in coordinated.status_snapshots().iter().enumerate() {
        println!(
            "  shard {s} snapshot: {} events folded, kept {:?} trial DMs in force, \
             all queues drained: {}",
            snapshot.events_folded,
            snapshot.kept_trials_in_force,
            snapshot.devices.iter().all(|d| d.queue_depth == 0)
        );
    }

    let skewed_per_shard = per_shard.report.clone();
    let skewed_coordinated = coordinated.report.clone();

    // --- Scenario 2: whole-shard kill --------------------------------
    // Two equal shards; shard 0 dies whole mid-survey. The planner is
    // fault-blind by design (runtime faults are the shard's business),
    // but its Pareto rule means coordination can never make the
    // surviving shard worse than per-shard admission would.
    let equal = vec![
        ResolvedFleet::synthetic(TRIALS, &[MEASURED_SECONDS_PER_BEAM; 3]),
        ResolvedFleet::synthetic(TRIALS, &[MEASURED_SECONDS_PER_BEAM; 3]),
    ];
    let kill = GridFaultPlan::none().with_shard_kill(0, 1.5);
    headline("whole-shard kill: 2 x 3 devices, shard 0 dies at t=1.5 s");
    let per_shard = run(&equal, &load, &kill, GridAdmission::PerShard);
    let coordinated = run(&equal, &load, &kill, GridAdmission::Coordinated);
    summarize("per-shard", &per_shard);
    summarize("coordinated", &coordinated);
    assert!(
        coordinated.report.deadline_misses <= per_shard.report.deadline_misses,
        "coordination never adds misses to a dying grid"
    );
    assert!(
        coordinated.report.shed_whole == per_shard.report.shed_whole,
        "in-flight loss at the kill is the shard's own business in both modes"
    );
    println!(
        "\nboth modes conserve every one of the {} admitted beams; coordination \
         is a strict win under skew and a no-op tax under catastrophe",
        coordinated.report.admitted
    );
    experiments::out::write_json_report(&AdmissionComparison {
        skewed_per_shard,
        skewed_coordinated,
        kill_per_shard: per_shard.report,
        kill_coordinated: coordinated.report,
    });
}
