//! Replays the Section V-D Apertif deployment as a *sharded grid*: the
//! paper's "≈50 HD7970s sustain real time" estimate, split across 4
//! cooperating schedulers of 13 measured-rate devices each, run
//! end-to-end through the dedisp-fleet grid layer — healthy, then with
//! a whole shard killed mid-survey under both rebalance policies.

use autotune::{ConfigSpace, TuningDatabase};
use dedisp_fleet::{
    FleetSpec, Grid, GridFaultPlan, GridRun, RebalancePolicy, ResolvedFleet, SurveyLoad,
};
use manycore_sim::amd_hd7970;
use radioastro::{RealtimeCheck, SurveySizing};

/// Seconds of observation each scenario simulates.
const TICKS: usize = 5;

/// The paper's measured HD7970 time for one 2,000-DM beam-second
/// (Section V-D: "0.106 seconds to dedisperse one second of data").
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

/// Shards in the grid.
const SHARDS: usize = 4;

/// HD7970s per shard: 4 x 13 = 52 devices, one rack over the quoted 50.
const DEVICES_PER_SHARD: usize = 13;

/// When the whole of shard 0 dies in the fault scenarios.
const SHARD_KILL_AT: f64 = 1.5;

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

fn summarize(run: &GridRun) {
    let r = &run.report;
    println!(
        "{} shards / {} devices | {} beam-seconds admitted over {} ticks [{:?}]",
        r.shards.len(),
        r.devices_total(),
        r.admitted,
        r.ticks,
        r.policy
    );
    println!(
        "completed {} | degraded {} | deadline misses {} | shed whole {} | rehomed {}",
        r.completed, r.degraded, r.deadline_misses, r.shed_whole, r.rehomed
    );
    for (s, shard) in r.shards.iter().enumerate() {
        println!(
            "  shard {s}: admitted {:3} completed {:3} degraded {:3} missed {:2} shed {:3}",
            shard.admitted,
            shard.completed,
            shard.degraded,
            shard.deadline_misses,
            shard.shed_whole
        );
    }
    println!(
        "shed records {} ({} trial DMs) | conserved across shards: {}",
        r.sheds.len(),
        r.total_shed_trials,
        r.conservation_ok()
    );
}

fn main() {
    let sizing = SurveySizing::apertif_survey();
    let load = SurveyLoad::from_sizing(&sizing, TICKS);
    let mut db = TuningDatabase::new();
    let space = ConfigSpace::paper();

    // The measured sustained rate, expressed as the GFLOP/s a device
    // must hold for the instance so that one beam-second costs 0.106 s.
    let check = RealtimeCheck::for_setup(&sizing.setup, sizing.trials);
    let measured_gflops = check.required_gflops / MEASURED_SECONDS_PER_BEAM;

    // Each shard is its own independently resolved fleet; the measured
    // rate bypasses the tuner entirely (RateSource::Measured).
    let shards: Vec<ResolvedFleet> = (0..SHARDS)
        .map(|_| {
            FleetSpec::new()
                .with_measured_group(amd_hd7970(), DEVICES_PER_SHARD, measured_gflops)
                .resolve(&mut db, &sizing.setup, sizing.trials, &space)
                .expect("measured shard resolves without tuning")
        })
        .collect();
    assert_eq!(db.len(), 0, "measured rates never touch the tuner");
    let per_shard = shards[0].beams_capacity();
    println!(
        "grid: {SHARDS} shards x {DEVICES_PER_SHARD} HD7970s at \
         {MEASURED_SECONDS_PER_BEAM} s/beam ({measured_gflops:.1} GFLOP/s measured)"
    );
    println!(
        "capacity {} beams/s per shard, {} grid-wide vs {} offered",
        per_shard,
        per_shard * SHARDS,
        sizing.beams
    );

    // --- Scenario 1: healthy grid ------------------------------------
    headline("healthy grid, static-hash routing");
    let run = Grid::session(&shards)
        .load(&load)
        .run()
        .expect("healthy grid runs");
    summarize(&run);
    assert_eq!(run.report.deadline_misses, 0, "4 x 13 GPUs keep up");
    assert_eq!(run.report.completed, run.report.admitted);
    assert!(run.report.conservation_ok());

    // --- Scenario 2: one whole shard dies mid-survey -----------------
    let faults = GridFaultPlan::none().with_shard_kill(0, SHARD_KILL_AT);
    headline(&format!(
        "shard 0 ({DEVICES_PER_SHARD} devices) killed whole at t={SHARD_KILL_AT} s, static-hash"
    ));
    let killed = Grid::session(&shards)
        .load(&load)
        .faults(&faults)
        .run()
        .expect("shard-kill run completes");
    summarize(&killed);
    assert!(
        killed.report.conservation_ok(),
        "every admitted beam appears once in the merged ledger - no silent loss"
    );
    assert_eq!(
        killed.records.len(),
        killed.report.admitted,
        "global ledger reports every admitted beam"
    );
    assert!(
        killed.report.rehomed > 0,
        "survivors absorb shard 0's share"
    );

    // --- Scenario 3: same failure, load-aware rebalancing ------------
    headline(&format!(
        "shard 0 killed whole at t={SHARD_KILL_AT} s, load-aware rebalancing"
    ));
    let balanced = Grid::session(&shards)
        .policy(RebalancePolicy::LoadAware)
        .load(&load)
        .faults(&faults)
        .run()
        .expect("load-aware shard-kill run completes");
    summarize(&balanced);
    assert!(balanced.report.conservation_ok());
    println!(
        "\nstatic-hash piles the dead shard's beams on one survivor \
         ({} trial DMs shed); load-aware spreads them ({} shed)",
        killed.report.total_shed_trials, balanced.report.total_shed_trials
    );
    assert!(
        balanced.report.total_shed_trials <= killed.report.total_shed_trials,
        "spreading the handoff can only reduce shedding"
    );

    println!("\n--- shard-kill report, load-aware (JSON) ---");
    println!("{}", balanced.report.to_json());
    experiments::out::write_json_report(&balanced.report);
}
