//! Capture harness: streaming ingest scenarios against the §V-D fleet.
//!
//! The paper sizes Apertif at ≈50 HD7970s (0.106 s to dedisperse one
//! beam-second of 2,000 trial DMs). This binary puts a streaming
//! capture front-end in front of exactly that fleet and runs the
//! arrival process through five scenarios: a feasible steady stream, a
//! bursty over-capacity stream under `DropOldest`, a slow-drain
//! bottleneck, a jittered stream under `Downsample2x`, and a bursty
//! stream under `NarrowDmPlan`. Each scenario asserts the capture
//! contract in-harness:
//!
//! * feasible streams reach the fleet untouched and complete with
//!   zero deadline misses;
//! * infeasible streams degrade **at capture, loudly** — the drop /
//!   downsample ledger is non-empty and reconciles exactly with the
//!   arrival count, while the ring's byte footprint stays under its
//!   hard bound and the final backlog is zero (no silent queue
//!   growth anywhere);
//! * a replay of the recorded arrival log reproduces the run
//!   ledger-identically.
//!
//! Everything printed is deterministic, so CI runs the binary twice
//! and byte-diffs both stdout and the `--json` fingerprint.

use dedisp_fleet::capture::{
    ArrivalPattern, ArrivalProcess, ArrivalTrace, BackpressurePolicy, BlockFormat, CaptureConfig,
    CaptureLedger, CaptureRun, CaptureSession,
};
use dedisp_fleet::{LoadSource, ResolvedFleet, Scheduler};
use radioastro::SurveySizing;
use serde::Serialize;

/// The paper's measured HD7970 rate (Section V-D).
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

/// Windows of observation each scenario streams.
const TICKS: usize = 6;

/// Arrival-process seed; fixed so the harness is replayable end to
/// end.
const SEED: u64 = 42;

/// One scenario's deterministic fingerprint: the capture ledger plus
/// the downstream fleet outcome counters.
#[derive(Serialize)]
struct ScenarioSummary {
    name: String,
    policy: &'static str,
    ledger: CaptureLedger,
    load_ticks: usize,
    completed: usize,
    degraded_beams: usize,
    deadline_misses: usize,
    shed_whole: usize,
    total_shed_trials: usize,
}

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

/// Ingests `pattern` through `config` and schedules the derived load
/// on `fleet`, asserting both conservation ledgers.
fn scenario(
    name: &str,
    fleet: &ResolvedFleet,
    config: CaptureConfig,
    pattern: ArrivalPattern,
    ticks: usize,
) -> (ScenarioSummary, CaptureRun) {
    let source = ArrivalProcess::new(config.beams, ticks, config.period_s, pattern, SEED);
    let run = CaptureSession::new(config)
        .expect("scenario config is valid")
        .ingest(source)
        .expect("the arrival process honors the source contract");
    let ledger = run.ledger;
    assert!(
        ledger.conservation_ok(),
        "{name}: capture ledger lost a block"
    );
    assert_eq!(ledger.final_backlog, 0, "{name}: silent queue growth");
    assert!(
        ledger.peak_bytes <= ledger.byte_bound,
        "{name}: ring footprint escaped its bound"
    );
    let fleet_run = Scheduler::session(fleet)
        .capture(&run)
        .run()
        .expect("capture load schedules");
    let r = &fleet_run.report;
    assert!(r.conservation_ok(), "{name}: fleet report lost a beam");
    assert_eq!(
        r.admitted,
        ledger.scheduled + ledger.degraded,
        "{name}: every drained block must reach admission"
    );
    println!(
        "{name:>12} | in {:>5} sched {:>5} degr {:>4} drop {:>4} | fill {:>3.0}% | done {:>5} deg {:>4} miss {:>3} shed {:>3}",
        ledger.arrivals,
        ledger.scheduled,
        ledger.degraded,
        ledger.dropped,
        100.0 * ledger.peak_bytes as f64 / ledger.byte_bound as f64,
        r.completed,
        r.degraded,
        r.deadline_misses,
        r.shed_whole,
    );
    let summary = ScenarioSummary {
        name: name.to_string(),
        policy: config.policy.label(),
        ledger,
        load_ticks: run.load.ticks(),
        completed: r.completed,
        degraded_beams: r.degraded,
        deadline_misses: r.deadline_misses,
        shed_whole: r.shed_whole,
        total_shed_trials: r.total_shed_trials,
    };
    (summary, run)
}

fn main() {
    let sizing = SurveySizing::apertif_survey();
    let devices = sizing
        .beams
        .div_ceil((1.0 / MEASURED_SECONDS_PER_BEAM).floor() as usize);
    let fleet = ResolvedFleet::synthetic(sizing.trials, &vec![MEASURED_SECONDS_PER_BEAM; devices]);
    // One block = one second of one Apertif beam, at filterbank
    // framing (1,024 channels × 20,000 samples/s × 4-byte f32).
    let format = BlockFormat::new(
        sizing.setup.band.channels(),
        sizing.setup.sample_rate as usize,
    );
    let base = CaptureConfig::new(sizing.beams, format, sizing.trials);

    headline(&format!(
        "capture scenarios: {} beams/s into {devices} HD7970s, {:.1} MB/block, ring bound {:.1} GB",
        sizing.beams,
        format.bytes_per_block() as f64 / 1e6,
        (sizing.beams * base.capacity_blocks * format.bytes_per_block()) as f64 / 1e9,
    ));
    println!(
        "{:>12} | {:>8} {:>10} {:>9} {:>9} | {:>8} | {:>10} {:>8} {:>8} {:>8}",
        "scenario",
        "arrivals",
        "scheduled",
        "degraded",
        "dropped",
        "peak",
        "completed",
        "degraded",
        "missed",
        "shed",
    );

    let mut summaries = Vec::new();

    // 1. Steady at capacity: the feasible case. Nothing is dropped or
    //    degraded at capture, and the fleet runs its §V-D operating
    //    point clean.
    let (steady, _) = scenario("steady", &fleet, base, ArrivalPattern::Steady, TICKS);
    assert_eq!(steady.ledger.dropped, 0, "feasible stream must not drop");
    assert_eq!(
        steady.ledger.degraded, 0,
        "feasible stream must not degrade"
    );
    assert_eq!(steady.deadline_misses, 0, "feasible stream must run clean");
    assert_eq!(steady.completed, steady.ledger.scheduled);
    summaries.push(steady);

    // 2. Bursty over capacity under DropOldest: each 3-window cycle
    //    packs 3 windows of data into one, overrunning a 2-block ring.
    //    Memory stays bounded, the overflow is dropped loudly at
    //    capture, and what survives completes without misses — the
    //    queue never silently grows.
    let bursty_cfg = CaptureConfig {
        capacity_blocks: 2,
        ..base
    };
    let (bursty, bursty_run) = scenario(
        "bursty",
        &fleet,
        bursty_cfg,
        ArrivalPattern::Bursty { cycle_ticks: 3 },
        TICKS,
    );
    assert!(bursty.ledger.dropped > 0, "over-capacity burst must drop");
    assert_eq!(bursty.ledger.dropped, bursty.ledger.drops_evicted);
    assert_eq!(
        bursty.deadline_misses, 0,
        "survivors of the burst must not miss: pressure resolves at capture, not in a queue"
    );
    summaries.push(bursty);

    // 3. Slow drain: ingest bandwidth (half a wavefront per window)
    //    below the arrival rate. The ring fills, DropOldest sheds the
    //    stale half, and the bound holds.
    let slow_cfg = CaptureConfig {
        capacity_blocks: 2,
        drain_max_blocks: sizing.beams / 2,
        ..base
    };
    let (slow, _) = scenario(
        "slow-drain",
        &fleet,
        slow_cfg,
        ArrivalPattern::Steady,
        TICKS,
    );
    assert!(slow.ledger.dropped > 0, "a starved drain must shed");
    summaries.push(slow);

    // 4. Jittered stream under Downsample2x: a low watermark on a
    //    shallow ring makes the intra-window pile-up cross the
    //    threshold, so blocks store at half rate instead of dropping.
    let jitter_cfg = CaptureConfig {
        capacity_blocks: 2,
        high_watermark: 0.75,
        policy: BackpressurePolicy::Downsample2x,
        ..base
    };
    let (jitter, _) = scenario(
        "jitter-half",
        &fleet,
        jitter_cfg,
        ArrivalPattern::Jittered { max_jitter_s: 0.4 },
        TICKS,
    );
    assert!(jitter.ledger.degraded > 0, "the watermark must engage");
    assert_eq!(jitter.ledger.drops_evicted, 0, "Downsample2x never evicts");
    summaries.push(jitter);

    // 5. Bursty under NarrowDmPlan: blocks survive at full rate but
    //    marked, and the narrowed batches carry admission ceilings
    //    (2 of 8 ladder tiers shed), which the scheduler turns into
    //    degraded-but-on-time beams.
    let narrow_cfg = CaptureConfig {
        capacity_blocks: 2,
        high_watermark: 0.75,
        policy: BackpressurePolicy::NarrowDmPlan { tiers: 2 },
        ..base
    };
    let (narrow, narrow_run) = scenario(
        "narrow-dm",
        &fleet,
        narrow_cfg,
        ArrivalPattern::Bursty { cycle_ticks: 3 },
        TICKS,
    );
    assert!(
        narrow.ledger.degrade_events > 0,
        "the watermark must engage"
    );
    assert!(
        narrow_run
            .load
            .ceilings()
            .iter()
            .any(|&c| c < sizing.trials),
        "narrowed batches must carry a lowered admission ceiling"
    );
    assert!(
        narrow.total_shed_trials > 0,
        "the scheduler must honor the narrowed plan as shed trials"
    );
    summaries.push(narrow);

    // --- replay: the recorded arrival log is the whole truth ---------
    headline("replay: re-ingesting the bursty arrival log");
    let replay = CaptureSession::new(bursty_cfg)
        .expect("config already validated")
        .ingest(ArrivalTrace::new(&bursty_run.arrival_log))
        .expect("the recorded log is contract-clean");
    assert_eq!(replay.ledger, bursty_run.ledger, "replay diverged");
    assert_eq!(replay.load, bursty_run.load, "replayed load diverged");
    println!(
        "replayed {} arrivals: ledger and load identical",
        replay.ledger.arrivals
    );

    // --- the degradation ledger, reconciled --------------------------
    headline("conservation: arrivals == scheduled + degraded + dropped");
    for s in &summaries {
        let l = &s.ledger;
        println!(
            "{:>12}: {} == {} + {} + {} (backlog {}, drops {} evicted / {} overflow)",
            s.name,
            l.arrivals,
            l.scheduled,
            l.degraded,
            l.dropped,
            l.final_backlog,
            l.drops_evicted,
            l.drops_overflow,
        );
        assert_eq!(l.arrivals, l.scheduled + l.degraded + l.dropped);
    }

    experiments::out::write_json_report(&summaries);
}
