//! The Section V-D Apertif deployment as a **multi-process cluster**:
//! every shard of the 4 x 13 HD7970 grid runs as a real supervised
//! child process speaking the framed shard protocol over stdio
//! (DESIGN.md §15), and the whole deployment is observable through one
//! HTTP operator plane.
//!
//! Four self-asserting scenarios:
//!
//! 1. **Healthy cluster** — the process-backed grid produces the same
//!    ledger (reports, records, events) as the in-thread grid, and the
//!    supervision ledger records one clean `Completed` attempt per
//!    shard.
//! 2. **Crash-real chaos** — shard 0's child `SIGKILL`s itself mid-run
//!    (`--chaos-exec 2`: die after framing 2 batches) while shard 2
//!    takes a *simulated* whole-shard flap. The supervisor restarts
//!    the corpse with backoff, drops the replayed frame prefix, and
//!    the merged ledger is byte-identical to the in-thread run — the
//!    kill is visible only in the supervision ledger.
//! 3. **Deterministic supervision** — the same chaos schedule re-run
//!    yields the identical supervision ledger: attempts, outcomes,
//!    dedupe counts, configured backoffs.
//! 4. **One obs plane, many grids** — two process-backed grids run
//!    concurrently under a single `ObsServer` via the `ObsDirectory`:
//!    `/grids` lists both, `/status/grid/<i>` scopes each, legacy
//!    paths alias the lowest id, unknown grids answer JSON 404s, and
//!    detach is live.
//!
//! The child half of the conversation is this same binary re-executed
//! with `--child` (plus `--chaos-exec <n>` for the self-kill); stdout
//! prints only deterministic facts so the CI cluster job can byte-diff
//! two runs.

use autotune::{ConfigSpace, TuningDatabase};
use dedisp_fleet::obs::{
    self, FlightRecorder, GridFanout, GridRegistry, GridStatusSnapshot, LiveGrid, MetricsRegistry,
    ObsDirectory, ObsServer, ObsState,
};
use dedisp_fleet::proc::{serve_stdio, ProcOutcome};
use dedisp_fleet::{
    ChaosSpec, FleetSpec, Grid, GridFaultPlan, GridObserver, GridReport, GridRun, ProcConfig,
    ProcGridLedger, ResolvedFleet, ShardBackend, SurveyLoad, TelemetryEvent,
};
use manycore_sim::amd_hd7970;
use radioastro::{RealtimeCheck, SurveySizing};
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Seconds of observation each scenario simulates.
const TICKS: usize = 5;

/// The paper's measured HD7970 time for one 2,000-DM beam-second
/// (Section V-D: "0.106 seconds to dedisperse one second of data").
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

/// Shards in the cluster — one supervised child process each.
const SHARDS: usize = 4;

/// HD7970s per shard: 4 x 13 = 52 devices, one rack over the quoted 50.
const DEVICES_PER_SHARD: usize = 13;

/// Batch frames shard 0's child streams before `SIGKILL`ing itself.
const CHAOS_FRAMES: u32 = 2;

/// When the *simulated* flap takes shard 2 down, and back up.
const FLAP_DOWN_AT: f64 = 1.0;
const FLAP_UP_AT: f64 = 3.0;

/// Per-event pacing for the observed scenario-4 grids, so they span
/// enough wall clock for the mid-run polls to land mid-run.
const PACE: Duration = Duration::from_micros(200);

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

/// The child half: serve one shard conversation over stdio, with an
/// optional self-`SIGKILL` after `--chaos-exec <n>` batch frames.
fn run_child(args: &[String]) {
    let chaos = args
        .iter()
        .position(|a| a == "--chaos-exec")
        .map(|i| ChaosSpec {
            kill_after_frames: args
                .get(i + 1)
                .and_then(|n| n.parse().ok())
                .expect("--chaos-exec requires a frame count"),
        });
    serve_stdio(chaos).expect("child shard conversation failed");
}

/// The supervisor config: this binary, re-executed as `cluster --child`.
fn child_config() -> ProcConfig {
    ProcConfig::current_exe()
        .expect("cluster binary resolves")
        .arg("--child")
        .liveness(Duration::from_secs(30))
}

/// One normalized report: the racy per-device queue high-water zeroed,
/// exactly as the chaos determinism fingerprint does.
fn normalized(report: &GridReport) -> GridReport {
    let mut n = report.clone();
    for shard in &mut n.shards {
        for d in &mut shard.devices {
            d.max_queue_depth = 0;
        }
    }
    n
}

/// Asserts a process-backed run is ledger-identical to its in-thread
/// twin: same merged report (modulo the racy high-water mark), same
/// global beam ledger, same telemetry stream.
fn assert_same_run(proc_run: &GridRun, thread_run: &GridRun, what: &str) {
    assert_eq!(
        normalized(&proc_run.report).to_json(),
        normalized(&thread_run.report).to_json(),
        "{what}: process and in-thread reports must agree"
    );
    assert_eq!(proc_run.records, thread_run.records, "{what}: beam ledgers");
    assert_eq!(proc_run.events, thread_run.events, "{what}: event streams");
    assert!(proc_run.report.conservation_ok());
}

fn summarize(run: &GridRun) {
    let r = &run.report;
    println!(
        "{} shards / {} devices | {} beam-seconds admitted over {} ticks",
        r.shards.len(),
        r.devices_total(),
        r.admitted,
        r.ticks,
    );
    println!(
        "completed {} | degraded {} | deadline misses {} | shed whole {} | rehomed {}",
        r.completed, r.degraded, r.deadline_misses, r.shed_whole, r.rehomed
    );
}

fn summarize_supervision(ledger: &ProcGridLedger) {
    for entry in &ledger.shards {
        let attempts: Vec<String> = entry
            .attempts
            .iter()
            .map(|a| {
                let outcome = match a.outcome {
                    ProcOutcome::Completed => "completed".to_string(),
                    ProcOutcome::Died { after_frames } => {
                        format!("died after {after_frames} frames")
                    }
                    ProcOutcome::TimedOut { after_frames } => {
                        format!("timed out after {after_frames} frames")
                    }
                    ProcOutcome::SpawnFailed => "spawn failed".to_string(),
                };
                match a.backoff_ms {
                    Some(ms) => format!("{outcome} (backoff {ms} ms)"),
                    None => outcome,
                }
            })
            .collect();
        println!(
            "  shard {}: {} | restarts {} | deduped frames {} | degraded in-thread: {}",
            entry.shard,
            attempts.join(" -> "),
            entry.restarts,
            entry.deduped_frames,
            entry.degraded_in_thread
        );
    }
}

/// A pacing observer (scenario 4): sleeps a sliver of real time per
/// event so the observed runs stay alive long enough to poll mid-run.
/// Real-time pacing never touches virtual time, so ledgers are
/// unchanged.
struct Throttle;

impl GridObserver for Throttle {
    fn observe_grid(&self, _shard: Option<usize>, _event: &TelemetryEvent) {
        std::thread::sleep(PACE);
    }
}

fn get_ok(addr: SocketAddr, path: &str) -> obs::Fetched {
    let fetched = obs::get(addr, path).unwrap_or_else(|e| panic!("GET {path} failed: {e}"));
    assert_eq!(fetched.status, 200, "GET {path} must answer 200");
    fetched
}

fn get_404(addr: SocketAddr, path: &str) -> String {
    let fetched = obs::get(addr, path).unwrap_or_else(|e| panic!("GET {path} failed: {e}"));
    assert_eq!(fetched.status, 404, "GET {path} must answer 404");
    assert!(
        fetched.body.starts_with("{\"error\":"),
        "404 bodies are JSON: {}",
        fetched.body
    );
    fetched.body
}

/// The machine-readable fingerprint the CI cluster job byte-diffs:
/// normalized ledgers plus the full supervision story.
#[derive(Serialize)]
struct ClusterReport {
    /// The healthy process-grid report, high-water marks zeroed.
    healthy: GridReport,
    /// The chaos (SIGKILL + simulated flap) report, normalized.
    chaos: GridReport,
    /// The chaos run's supervision ledger — restarts, dedupes, backoffs.
    supervision: ProcGridLedger,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--child") {
        run_child(&args);
        return;
    }

    // --- the Section V-D fleet, one resolved shard per child ---------
    let sizing = SurveySizing::apertif_survey();
    let load = SurveyLoad::from_sizing(&sizing, TICKS);
    let mut db = TuningDatabase::new();
    let space = ConfigSpace::paper();
    let check = RealtimeCheck::for_setup(&sizing.setup, sizing.trials);
    let measured_gflops = check.required_gflops / MEASURED_SECONDS_PER_BEAM;
    let shards: Vec<ResolvedFleet> = (0..SHARDS)
        .map(|_| {
            FleetSpec::new()
                .with_measured_group(amd_hd7970(), DEVICES_PER_SHARD, measured_gflops)
                .resolve(&mut db, &sizing.setup, sizing.trials, &space)
                .expect("measured shard resolves without tuning")
        })
        .collect();
    println!(
        "cluster: {SHARDS} child processes x {DEVICES_PER_SHARD} HD7970s at \
         {MEASURED_SECONDS_PER_BEAM} s/beam ({measured_gflops:.1} GFLOP/s measured)"
    );

    // --- Scenario 1: healthy multi-process cluster -------------------
    headline("healthy cluster: every shard a supervised child process");
    let thread_run = Grid::session(&shards)
        .load(&load)
        .run()
        .expect("in-thread reference run completes");
    let proc_run = Grid::session(&shards)
        .load(&load)
        .backend(ShardBackend::Process(child_config()))
        .run()
        .expect("process-backed grid runs");
    assert_same_run(&proc_run, &thread_run, "healthy");
    summarize(&proc_run);
    let healthy_ledger = proc_run.proc.as_ref().expect("process runs carry a ledger");
    assert_eq!(healthy_ledger.total_restarts(), 0);
    assert!(!healthy_ledger.any_degraded());
    for (shard, entry) in healthy_ledger.shards.iter().enumerate() {
        assert_eq!(entry.shard, shard);
        assert_eq!(entry.attempts.len(), 1);
        assert_eq!(entry.attempts[0].outcome, ProcOutcome::Completed);
        assert!(entry.frames_forwarded > 0, "shard {shard} framed nothing");
    }
    summarize_supervision(healthy_ledger);
    println!("process cluster == in-thread grid (reports, records, events)");

    // --- Scenario 2: SIGKILL a child + flap a simulated shard --------
    headline(&format!(
        "chaos: shard 0's child SIGKILLs itself after {CHAOS_FRAMES} frames; \
         shard 2 flaps (simulated) at t={FLAP_DOWN_AT}..{FLAP_UP_AT} s"
    ));
    let faults = GridFaultPlan::none().with_shard_flap(2, FLAP_DOWN_AT, FLAP_UP_AT);
    let thread_chaos = Grid::session(&shards)
        .load(&load)
        .faults(&faults)
        .run()
        .expect("in-thread flap run completes");
    let run_chaos = || {
        Grid::session(&shards)
            .load(&load)
            .faults(&faults)
            .backend(ShardBackend::Process(child_config().shard_args(
                0,
                ["--chaos-exec".to_string(), CHAOS_FRAMES.to_string()],
            )))
            .run()
            .expect("chaos cluster run completes")
    };
    let chaos_run = run_chaos();
    assert_same_run(&chaos_run, &thread_chaos, "chaos");
    summarize(&chaos_run);
    let supervision = chaos_run.proc.as_ref().expect("ledger present");
    let victim = &supervision.shards[0];
    assert_eq!(victim.restarts, 1, "one restart repaired the kill");
    assert!(!victim.degraded_in_thread);
    assert_eq!(
        victim.attempts[0].outcome,
        ProcOutcome::Died {
            after_frames: CHAOS_FRAMES
        }
    );
    assert_eq!(victim.attempts[1].outcome, ProcOutcome::Completed);
    assert_eq!(
        victim.deduped_frames,
        u64::from(CHAOS_FRAMES),
        "the replayed prefix was dropped, not double-counted"
    );
    for bystander in &supervision.shards[1..] {
        assert_eq!(bystander.restarts, 0);
        assert_eq!(bystander.deduped_frames, 0);
    }
    summarize_supervision(supervision);
    println!(
        "the kill is real (SIGKILL, mid-stream) and invisible in every \
         grid-level ledger; rehomed {} beam-seconds came from the *simulated* \
         flap, handled by the same re-homing path",
        chaos_run.report.rehomed
    );

    // --- Scenario 3: the supervision ledger is deterministic ---------
    headline("determinism: the same chaos schedule tells the same story");
    let again = run_chaos();
    assert_eq!(
        again.proc, chaos_run.proc,
        "fixed chaos schedule => identical supervision ledger"
    );
    assert_eq!(
        normalized(&again.report).to_json(),
        normalized(&chaos_run.report).to_json()
    );
    println!("second chaos run: identical supervision ledger, identical report");

    // --- Scenario 4: one obs plane over two concurrent grids ---------
    headline("one ObsServer over two concurrent process-backed grids");
    let surveys = [("survey-a", 3usize), ("survey-b", 2usize)];
    let grids: Vec<(String, Vec<ResolvedFleet>, SurveyLoad)> = surveys
        .iter()
        .map(|&(name, n)| {
            let fleets: Vec<ResolvedFleet> = (0..n)
                .map(|_| ResolvedFleet::synthetic(800, &[0.1, 0.12]))
                .collect();
            (name.to_string(), fleets, SurveyLoad::custom(800, 9, 4))
        })
        .collect();

    let directory = ObsDirectory::new();
    let mut stacks = Vec::new();
    for (name, fleets, _) in &grids {
        let registry = MetricsRegistry::new();
        let shard_devices: Vec<usize> = fleets.iter().map(|f| f.devices.len()).collect();
        let metrics = GridRegistry::new(&registry, &shard_devices);
        let recorder = FlightRecorder::new(1 << 14);
        let live = LiveGrid::new(&shard_devices);
        let id = directory.attach(
            name.clone(),
            ObsState::new(registry, recorder.clone(), live.clone()),
        );
        stacks.push((id, metrics, recorder, live));
    }
    let server = ObsServer::bind_directory("127.0.0.1:0", directory.clone())
        .expect("loopback bind for the cluster obs plane");
    let addr = server.addr();

    let grids_listing = get_ok(addr, "/grids").body;
    assert_eq!(
        grids_listing,
        "{\"grids\":[{\"id\":0,\"name\":\"survey-a\"},{\"id\":1,\"name\":\"survey-b\"}]}\n"
    );
    print!("GET /grids -> {grids_listing}");

    let done = AtomicBool::new(false);
    let runs: Vec<GridRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = grids
            .iter()
            .zip(&stacks)
            .map(|((_, fleets, load), (_, metrics, recorder, live))| {
                let done = &done;
                scope.spawn(move || {
                    let throttle = Throttle;
                    let sinks: [&dyn GridObserver; 4] = [metrics, recorder, live, &throttle];
                    let fanout = GridFanout::new(&sinks);
                    let run = Grid::session(fleets)
                        .load(load)
                        .backend(ShardBackend::Process(child_config()))
                        .run_with(&fanout)
                        .expect("observed process grid completes");
                    done.store(true, Ordering::SeqCst);
                    run
                })
            })
            .collect();

        // Poll the shared plane while both grids are mid-flight; every
        // payload must parse whatever the interleaving.
        while !done.load(Ordering::SeqCst) {
            assert_eq!(get_ok(addr, "/healthz").body, "ok\n");
            for (id, ..) in &stacks {
                let body = get_ok(addr, &format!("/status/grid/{id}")).body;
                let snapshot =
                    GridStatusSnapshot::from_json(&body).expect("mid-run /status parses");
                assert!(
                    snapshot.completed + snapshot.degraded + snapshot.deadline_misses
                        <= snapshot.placed,
                    "prefix fold: outcomes cannot outrun placements"
                );
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("grid thread panicked"))
            .collect()
    });

    // After the dust settles every grid-scoped endpoint agrees with its
    // own run's ledger — one server, two truths, no cross-talk.
    for ((id, ..), run) in stacks.iter().zip(&runs) {
        assert!(run.proc.as_ref().is_some_and(|p| !p.shards.is_empty()));
        let snapshot =
            GridStatusSnapshot::from_json(&get_ok(addr, &format!("/status/grid/{id}")).body)
                .expect("final /status parses");
        assert_eq!(snapshot.completed, run.report.completed);
        assert_eq!(snapshot.shards.len(), run.report.shards.len());
        let shard0 = get_ok(addr, &format!("/status/grid/{id}/shard/0")).body;
        assert!(!shard0.is_empty());
        let events = get_ok(addr, &format!("/events/grid/{id}?n=100&format=batch")).body;
        let batched = FlightRecorder::from_ndjson_batched(&events).expect("batched NDJSON parses");
        assert!(!batched.is_empty());
        println!(
            "grid {id}: /status/grid/{id} completed {} == ledger {}",
            snapshot.completed, run.report.completed
        );
    }

    // Legacy paths alias the lowest id; unknown grids 404 in JSON.
    assert_eq!(
        get_ok(addr, "/status").body,
        get_ok(addr, "/status/grid/0").body
    );
    get_404(addr, "/status/grid/99");
    get_404(addr, "/metrics/grid/not-a-number");
    println!("legacy /status aliases grid 0; unknown grids answer JSON 404s");

    // Detach is live: survey-b vanishes from the plane mid-flight.
    let id_b = stacks[1].0;
    assert!(directory.detach(id_b));
    get_404(addr, &format!("/status/grid/{id_b}"));
    assert_eq!(
        get_ok(addr, "/grids").body,
        "{\"grids\":[{\"id\":0,\"name\":\"survey-a\"}]}\n"
    );
    println!("detached grid {id_b}: its routes 404, /grids shrank, grid 0 unaffected");
    server.shutdown();

    experiments::out::write_json_report(&ClusterReport {
        healthy: normalized(&proc_run.report),
        chaos: normalized(&chaos_run.report),
        supervision: chaos_run.proc.clone().expect("ledger present"),
    });
    println!("\nall cluster assertions passed");
}
