//! Regenerates the Section V-D Apertif survey sizing.
use experiments::figures::{sizing, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", sizing(&data));
}
