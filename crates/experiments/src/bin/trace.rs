//! The tracing & self-profiling plane, exercised end to end
//! (DESIGN.md §17): phase spans over the scheduler's tick loop,
//! cross-process span propagation from supervised child shards, the
//! Chrome/Perfetto export, and the SLO burn-rate alerting fold.
//!
//! Four self-asserting scenarios:
//!
//! 1. **Phase coverage** — a traced single-fleet run's phase spans
//!    (drain, admit, dispatch, observer-flush, batch-encode) account
//!    for more than 95% of the tick umbrella spans' wall time: the
//!    profile explains where ticks go, it does not gesture at them.
//! 2. **Observation is free of side effects** — the traced run's
//!    report, beam ledger, and event log are identical to an untraced
//!    run of the same inputs (the racy per-device queue high-water
//!    zeroed, exactly as the determinism fingerprint does).
//! 3. **One timeline across processes** — the §V-D grid runs with
//!    every shard a supervised child; shard 0's child `SIGKILL`s
//!    itself mid-run and is restarted. The supervisor's trace sink
//!    ends up holding child phase spans (shipped upstream as
//!    `ShardFrame::Trace` sidecars) *and* supervisor spans
//!    (`frame_decode`, `liveness_wait`, `restart_backoff`) on one
//!    clock, the merged ledger still equals the in-thread twin, and
//!    `/trace?format=chrome` serves a Perfetto-loadable timeline
//!    (written to `--trace-out <path>` for the CI artifact).
//! 4. **SLO burn-rate alerting** — a deadline-miss burst walks the
//!    `BurnRate` fold through `ok -> warn -> page` and clean traffic
//!    walks it back down; `/slo` and the `fleet_slo_*` gauges tell the
//!    same story.
//!
//! The child half of the conversation is this same binary re-executed
//! with `--child` (plus `--chaos-exec <n>` for the self-kill); stdout
//! prints only deterministic facts so the CI tracing job can byte-diff
//! two runs. Span *durations* are wall-clock and never printed.

use autotune::{ConfigSpace, TuningDatabase};
use dedisp_fleet::obs::{
    self, BurnRate, FlightRecorder, LiveGrid, MetricsRegistry, ObsServer, ObsState, SloConfig,
    SloSnapshot, SloState, SpanKind, TraceSink,
};
use dedisp_fleet::proc::{serve_stdio, ProcOutcome};
use dedisp_fleet::{
    BeamOutcome, BeamRecord, ChaosSpec, FaultPlan, FleetReport, FleetSpec, Grid, GridReport,
    GridRun, ProcConfig, ProcGridLedger, ResolvedFleet, Scheduler, ShardBackend, SurveyLoad,
    TelemetryEvent,
};
use manycore_sim::amd_hd7970;
use radioastro::{RealtimeCheck, SurveySizing};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

/// Seconds of observation the §V-D cluster scenario simulates.
const TICKS: usize = 5;

/// The paper's measured HD7970 time for one 2,000-DM beam-second
/// (Section V-D: "0.106 seconds to dedisperse one second of data").
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

/// Shards in the cluster scenario — one supervised child each.
const SHARDS: usize = 4;

/// HD7970s per shard.
const DEVICES_PER_SHARD: usize = 13;

/// Batch frames shard 0's child streams before `SIGKILL`ing itself.
const CHAOS_FRAMES: u32 = 2;

/// The coverage floor scenario 1 asserts: phase spans must explain
/// more than this fraction of tick wall time.
const COVERAGE_FLOOR: f64 = 0.95;

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

/// The child half: serve one shard conversation over stdio, with an
/// optional self-`SIGKILL` after `--chaos-exec <n>` batch frames.
/// Tracing in the child is switched by the `DEDISP_TRACE` env var the
/// supervisor sets — the spec wire format never changes.
fn run_child(args: &[String]) {
    let chaos = args
        .iter()
        .position(|a| a == "--chaos-exec")
        .map(|i| ChaosSpec {
            kill_after_frames: args
                .get(i + 1)
                .and_then(|n| n.parse().ok())
                .expect("--chaos-exec requires a frame count"),
        });
    serve_stdio(chaos).expect("child shard conversation failed");
}

/// The supervisor config: this binary, re-executed as `trace --child`.
fn child_config() -> ProcConfig {
    ProcConfig::current_exe()
        .expect("trace binary resolves")
        .arg("--child")
        .liveness(Duration::from_secs(30))
}

/// `--trace-out <path>` / `--trace-out=<path>`: where to write the
/// Chrome trace artifact, if anywhere.
fn trace_out_path(args: &[String]) -> Option<PathBuf> {
    for (i, arg) in args.iter().enumerate() {
        if arg == "--trace-out" {
            return args.get(i + 1).map(PathBuf::from);
        }
        if let Some(path) = arg.strip_prefix("--trace-out=") {
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// A fleet report with the racy per-device queue high-water zeroed.
fn normalized_fleet(report: &FleetReport) -> FleetReport {
    let mut n = report.clone();
    for d in &mut n.devices {
        d.max_queue_depth = 0;
    }
    n
}

/// The grid-report analogue of [`normalized_fleet`].
fn normalized(report: &GridReport) -> GridReport {
    let mut n = report.clone();
    for shard in &mut n.shards {
        for d in &mut shard.devices {
            d.max_queue_depth = 0;
        }
    }
    n
}

/// One terminal beam event at virtual time `at`, missed or clean —
/// the raw material the SLO scenario feeds the fold.
fn beam_event(at: f64, missed: bool) -> TelemetryEvent {
    TelemetryEvent::Beam(BeamRecord {
        index: 0,
        tick: 0,
        beam: 0,
        outcome: if missed {
            BeamOutcome::Missed {
                device: 0,
                finish: at,
                kept_trials: 1,
            }
        } else {
            BeamOutcome::Completed {
                device: 0,
                finish: at,
            }
        },
    })
}

/// The machine-readable fingerprint the CI tracing job byte-diffs:
/// only deterministic facts — normalized ledgers, the supervision
/// story, span *counts* where they are deterministic, and the SLO
/// fold's virtual-time snapshot. Never span durations.
#[derive(Serialize)]
struct TraceReport {
    /// Phase coverage exceeded [`COVERAGE_FLOOR`].
    coverage_ok: bool,
    /// Tick spans the traced single-fleet run recorded (== ticks).
    tick_spans: u64,
    /// The chaos cluster report, high-water marks zeroed.
    chaos: GridReport,
    /// The chaos run's supervision ledger — restarts, dedupes, backoffs.
    supervision: ProcGridLedger,
    /// The SLO fold after the miss burst (virtual time, deterministic).
    slo_at_page: SloSnapshot,
    /// The SLO fold after recovery traffic.
    slo_recovered: SloSnapshot,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--child") {
        run_child(&args);
        return;
    }

    // --- Scenario 1: phase spans explain tick wall time --------------
    headline("phase coverage: spans explain >95% of tick wall time");
    let fleet = ResolvedFleet::synthetic(2000, &[0.08, 0.1, 0.12, 0.1, 0.09, 0.11, 0.1, 0.1]);
    let load = SurveyLoad::custom(2000, 24, 6);
    let faults = FaultPlan::none().with_kill(2, 1.4).with_flap(4, 0.6, 2.1);
    let sink = TraceSink::new(1 << 15);
    let traced = Scheduler::session(&fleet)
        .load(&load)
        .faults(&faults)
        .trace(&sink)
        .run()
        .expect("traced run completes");
    let spans = sink.snapshot();
    let tick_ns: u64 = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Tick)
        .map(|s| s.dur_ns)
        .sum();
    let phase_ns: u64 = spans
        .iter()
        .filter(|s| {
            matches!(
                s.kind,
                SpanKind::Drain
                    | SpanKind::Admit
                    | SpanKind::Dispatch
                    | SpanKind::ObserverFlush
                    | SpanKind::BatchEncode
            )
        })
        .map(|s| s.dur_ns)
        .sum();
    let coverage = phase_ns as f64 / tick_ns.max(1) as f64;
    assert!(
        coverage > COVERAGE_FLOOR,
        "phase spans cover only {:.1}% of tick wall time",
        coverage * 100.0
    );
    let tick_spans = spans.iter().filter(|s| s.kind == SpanKind::Tick).count() as u64;
    assert_eq!(
        tick_spans as usize, load.ticks,
        "one umbrella span per tick"
    );
    println!(
        "traced {} ticks: {} tick spans, phase coverage > {:.0}%: true",
        load.ticks,
        tick_spans,
        COVERAGE_FLOOR * 100.0
    );

    // --- Scenario 2: observation has no side effects ------------------
    headline("transparency: traced == untraced, byte for byte");
    let bare = Scheduler::session(&fleet)
        .load(&load)
        .faults(&faults)
        .run()
        .expect("untraced run completes");
    assert_eq!(
        normalized_fleet(&traced.report).to_json(),
        normalized_fleet(&bare.report).to_json(),
        "tracing perturbed the report"
    );
    assert_eq!(traced.records, bare.records, "tracing perturbed the ledger");
    assert_eq!(traced.log, bare.log, "tracing perturbed the event log");
    println!("report, records, and event log identical with and without the sink");

    // --- Scenario 3: one timeline across a SIGKILL'd cluster ----------
    headline(&format!(
        "cross-process timeline: {SHARDS} child shards, shard 0 SIGKILLs \
         itself after {CHAOS_FRAMES} frames and is restarted"
    ));
    let sizing = SurveySizing::apertif_survey();
    let cluster_load = SurveyLoad::from_sizing(&sizing, TICKS);
    let mut db = TuningDatabase::new();
    let space = ConfigSpace::paper();
    let check = RealtimeCheck::for_setup(&sizing.setup, sizing.trials);
    let measured_gflops = check.required_gflops / MEASURED_SECONDS_PER_BEAM;
    let shards: Vec<ResolvedFleet> = (0..SHARDS)
        .map(|_| {
            FleetSpec::new()
                .with_measured_group(amd_hd7970(), DEVICES_PER_SHARD, measured_gflops)
                .resolve(&mut db, &sizing.setup, sizing.trials, &space)
                .expect("measured shard resolves without tuning")
        })
        .collect();
    let grid_sink = TraceSink::new(1 << 16);
    let thread_twin = Grid::session(&shards)
        .load(&cluster_load)
        .run()
        .expect("in-thread twin completes");
    let proc_run: GridRun = Grid::session(&shards)
        .load(&cluster_load)
        .trace(&grid_sink)
        .backend(ShardBackend::Process(child_config().shard_args(
            0,
            ["--chaos-exec".to_string(), CHAOS_FRAMES.to_string()],
        )))
        .run()
        .expect("traced chaos cluster completes");
    assert_eq!(
        normalized(&proc_run.report).to_json(),
        normalized(&thread_twin.report).to_json(),
        "tracing or supervision perturbed the merged report"
    );
    assert_eq!(proc_run.records, thread_twin.records);
    assert_eq!(proc_run.events, thread_twin.events);
    let supervision = proc_run.proc.as_ref().expect("ledger present").clone();
    let victim = &supervision.shards[0];
    assert_eq!(victim.restarts, 1, "one restart repaired the kill");
    assert_eq!(
        victim.attempts[0].outcome,
        ProcOutcome::Died {
            after_frames: CHAOS_FRAMES
        }
    );
    assert_eq!(victim.attempts[1].outcome, ProcOutcome::Completed);

    let grid_spans = grid_sink.snapshot();
    let child_spans = grid_spans.iter().filter(|s| !s.kind.is_supervisor());
    let has_child_tick = child_spans.clone().any(|s| s.kind == SpanKind::Tick);
    let child_shards_seen: std::collections::BTreeSet<_> =
        child_spans.clone().filter_map(|s| s.shard).collect();
    let has_decode = grid_spans.iter().any(|s| s.kind == SpanKind::FrameDecode);
    let has_wait = grid_spans.iter().any(|s| s.kind == SpanKind::LivenessWait);
    let has_backoff = grid_spans
        .iter()
        .any(|s| s.kind == SpanKind::RestartBackoff && s.shard == Some(0));
    assert!(has_child_tick, "no child tick spans propagated upstream");
    assert_eq!(
        child_shards_seen.len(),
        SHARDS,
        "every child shard ships spans"
    );
    assert!(has_decode && has_wait, "supervisor spans missing");
    assert!(has_backoff, "the restart backoff for shard 0 left no span");
    println!(
        "sink holds child spans from {SHARDS}/{SHARDS} shards plus supervisor \
         frame_decode/liveness_wait spans and shard 0's restart_backoff"
    );

    // Serve the merged timeline and pull the Perfetto export over HTTP.
    let state = ObsState::new(
        MetricsRegistry::new(),
        FlightRecorder::new(64),
        LiveGrid::new(&[DEVICES_PER_SHARD; SHARDS]),
    )
    .with_trace(&grid_sink);
    let server = ObsServer::bind("127.0.0.1:0", state).expect("loopback bind");
    let addr = server.addr();
    let ndjson = obs::get(addr, "/trace?n=1000000").expect("GET /trace");
    assert_eq!(ndjson.status, 200);
    let parsed = dedisp_fleet::obs::trace::from_ndjson(&ndjson.body).expect("NDJSON export parses");
    assert_eq!(parsed.len(), grid_spans.len());
    let chrome = obs::get(addr, "/trace?n=1000000&format=chrome").expect("GET /trace chrome");
    assert_eq!(chrome.status, 200);
    assert!(chrome.content_type.starts_with("application/json"));
    let value: serde::Value = serde_json::from_str(&chrome.body).expect("chrome export parses");
    let events = value
        .as_object()
        .and_then(|o| o.get("traceEvents"))
        .and_then(|v| v.as_array())
        .expect("chrome export has a traceEvents array");
    assert!(events.len() >= grid_spans.len());
    for name in ["tick", "frame_decode", "liveness_wait", "restart_backoff"] {
        assert!(
            chrome.body.contains(&format!("\"name\":\"{name}\"")),
            "chrome export lacks {name} events"
        );
    }
    server.shutdown();
    if let Some(path) = trace_out_path(&args) {
        std::fs::write(&path, &chrome.body)
            .unwrap_or_else(|e| panic!("failed to write {}: {e}", path.display()));
        println!("wrote Chrome trace artifact to {}", path.display());
    }
    println!("/trace NDJSON and Chrome exports parse; one timeline, two processes");

    // --- Scenario 4: SLO burn-rate alerting ---------------------------
    headline("SLO plane: a miss burst walks ok -> warn -> page and back");
    let registry = MetricsRegistry::new();
    let slo = BurnRate::with_registry(
        SloConfig {
            budget: 0.05,
            short_window_s: 10.0,
            long_window_s: 100.0,
            warn_at: 1.0,
            page_at: 3.0,
        },
        &registry,
    );
    // Clean traffic: 200 beams over 10 virtual seconds, all on time.
    for i in 0..200 {
        slo.fold(&beam_event(i as f64 * 0.05, false));
    }
    assert_eq!(slo.state(), SloState::Ok);
    // A deadline-miss burst; record every distinct state on the way up.
    let mut walked = vec![SloState::Ok];
    for i in 0..60 {
        slo.fold(&beam_event(10.0 + i as f64 * 0.01, true));
        let state = slo.state();
        if walked.last() != Some(&state) {
            walked.push(state);
        }
    }
    assert_eq!(
        walked,
        vec![SloState::Ok, SloState::Warn, SloState::Page],
        "the burst must walk through warn before page"
    );
    let slo_at_page = slo.snapshot();
    assert_eq!(slo_at_page.state, SloState::Page);
    assert!(slo_at_page.windows[0].burn_rate >= 3.0);
    let rendered = registry.render_prometheus();
    assert!(rendered.contains("fleet_slo_state 2"));
    assert!(rendered.contains("fleet_slo_budget_fraction 0.05"));
    // Recovery: clean traffic slides the burst out of the short window.
    for i in 0..2000 {
        slo.fold(&beam_event(11.0 + i as f64 * 0.01, false));
    }
    let slo_recovered = slo.snapshot();
    assert_ne!(slo_recovered.state, SloState::Page, "recovery never came");

    // The `/slo` endpoint serves the same snapshot.
    let state =
        ObsState::new(registry, FlightRecorder::new(64), LiveGrid::new(&[1])).with_slo(&slo);
    let server = ObsServer::bind("127.0.0.1:0", state).expect("loopback bind");
    let served = obs::get(server.addr(), "/slo").expect("GET /slo");
    assert_eq!(served.status, 200);
    let snapshot = SloSnapshot::from_json(&served.body).expect("/slo parses");
    assert_eq!(snapshot, slo_recovered);
    server.shutdown();
    println!(
        "states walked: {} -> {} -> {}; recovered to {}; /slo agrees with the fold",
        SloState::Ok.label(),
        SloState::Warn.label(),
        SloState::Page.label(),
        slo_recovered.state.label()
    );

    experiments::out::write_json_report(&TraceReport {
        coverage_ok: true,
        tick_spans,
        chaos: normalized(&proc_run.report),
        supervision,
        slo_at_page,
        slo_recovered,
    });
    println!("\nall tracing assertions passed");
}
