//! Algorithm switching vs tier shedding under a bursty Apertif load.
//!
//! §V-D sizes the Apertif survey for brute-force dedispersion only: a
//! device that falls behind has exactly one lever, shedding trailing
//! DM tiers. The algorithm-aware rate plane adds a second lever — run
//! the same beams through a cheaper algorithm (two-stage subband, or
//! Fourier-domain dedispersion) at a bounded, *documented* accuracy
//! cost instead of silently discarding the top of the DM range.
//!
//! This binary puts both policies on the same bursty over-capacity
//! load: calm ticks the brute-force fleet absorbs at full resolution,
//! burst ticks that exceed it by ~60%. The baseline
//! (`PerDeviceGreedy`) sheds DM tiers on every burst; the
//! `AlgorithmLadder` demotes devices to the subband table entry for
//! the burst and promotes them back when the load calms. The run
//! self-asserts the headline claim: the ladder converts at least half
//! of the baseline's shed trial DMs into demotions while adding zero
//! deadline misses.

use dedisp_fleet::{
    Algorithm, AlgorithmLadder, FleetReport, FleetRun, LoadSource, ResolvedFleet, Scheduler,
    StatusSnapshot, TelemetryEvent,
};
use serde::Serialize;

/// The paper's measured HD7970 brute-force rate (Section V-D).
const SPB_BRUTE: f64 = 0.106;

/// Modeled subband rate: the two-stage scheme at stride 32 does ~6% of
/// the brute-force flop at Apertif scale; the declared rate keeps a
/// conservative 2x to cover its worse arithmetic intensity.
const SPB_SUBBAND: f64 = 0.053;

/// Trial DMs per beam (the paper's Apertif instance).
const TRIALS: usize = 2000;

/// Devices in the fleet.
const DEVICES: usize = 4;

/// Beams per calm tick — inside the brute-force fleet's ~37 beams/s.
const CALM_BEAMS: usize = 20;

/// Beams per burst tick — ~60% over brute-force capacity, inside the
/// demoted fleet's ~75 beams/s.
const BURST_BEAMS: usize = 60;

/// Ticks simulated (alternating calm / burst, starting calm).
const TICKS: usize = 6;

/// A calm/burst alternating survey cadence: one-second ticks whose
/// beam count swings between under- and over-capacity.
struct BurstyLoad;

impl LoadSource for BurstyLoad {
    fn setup(&self) -> &str {
        "Apertif-bursty"
    }

    fn trials(&self) -> usize {
        TRIALS
    }

    fn ticks(&self) -> usize {
        TICKS
    }

    fn beams_at(&self, tick: usize) -> usize {
        if tick.is_multiple_of(2) {
            CALM_BEAMS
        } else {
            BURST_BEAMS
        }
    }

    fn release(&self, tick: usize) -> f64 {
        tick as f64
    }

    fn deadline(&self, tick: usize) -> f64 {
        tick as f64 + 1.0
    }
}

/// The machine-readable artifact `--json` writes.
#[derive(Serialize)]
struct AlgorithmComparison {
    /// Brute-force-only fleet under `PerDeviceGreedy`.
    baseline: FleetReport,
    /// Multi-algorithm fleet under the `AlgorithmLadder`.
    ladder: FleetReport,
    /// `AlgorithmSwitch` events the ladder run emitted.
    algorithm_switches: usize,
    /// Switches that moved a device *off* brute force.
    demotions: usize,
    /// Switches that moved a device *back to* brute force.
    promotions: usize,
    /// Shed trial DMs the ladder converted into demotions.
    shed_trials_converted: usize,
}

fn fleet() -> ResolvedFleet {
    let table: &[(Algorithm, f64)] = &[
        (Algorithm::BruteForce, SPB_BRUTE),
        (Algorithm::Subband { factor: 32 }, SPB_SUBBAND),
    ];
    ResolvedFleet::synthetic_with_algorithms(TRIALS, &[table; DEVICES])
}

fn summarize(label: &str, run: &FleetRun) {
    let r = &run.report;
    println!(
        "{label:>9}: completed {:>3} | degraded {:>3} | missed {:>2} | shed whole {:>2} \
         | shed trial DMs {:>6}",
        r.completed, r.degraded, r.deadline_misses, r.shed_whole, r.total_shed_trials
    );
    assert!(r.conservation_ok(), "{label}: ledger must conserve");
}

fn main() {
    let load = BurstyLoad;
    println!(
        "=== bursty Apertif load: {DEVICES} x HD7970, {CALM_BEAMS}/{BURST_BEAMS} beams \
         alternating over {TICKS} ticks ==="
    );

    // Baseline: the same devices, brute force only — the historical
    // §V-D plane, where bursts can only shed DM tiers.
    let brute_only = ResolvedFleet::synthetic(TRIALS, &[SPB_BRUTE; DEVICES]);
    let baseline = Scheduler::session(&brute_only)
        .load(&load)
        .run()
        .expect("baseline run completes");
    summarize("baseline", &baseline);

    // Ladder: the same devices with a subband table entry the planner
    // may demote to before shedding.
    let rated = fleet();
    let ladder = Scheduler::session(&rated)
        .load(&load)
        .policy(&AlgorithmLadder)
        .run()
        .expect("ladder run completes");
    summarize("ladder", &ladder);

    let switches: Vec<(usize, Algorithm, Algorithm)> = ladder
        .log
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::AlgorithmSwitch {
                device, from, to, ..
            } => Some((device, from, to)),
            _ => None,
        })
        .collect();
    let demotions = switches
        .iter()
        .filter(|(_, _, to)| *to != Algorithm::BruteForce)
        .count();
    let promotions = switches
        .iter()
        .filter(|(_, _, to)| *to == Algorithm::BruteForce)
        .count();
    println!(
        "\nladder switched algorithms {} times ({demotions} demotions, {promotions} promotions)",
        switches.len()
    );

    // The operator view, seeded with fleet context: descriptors plus
    // the live per-device algorithm assignment.
    let mut status = StatusSnapshot::for_fleet(&rated);
    ladder.log.replay(&mut status);
    for d in &status.devices {
        println!(
            "  {}: running {} | queue drained: {}",
            d.descriptor,
            d.algorithm,
            d.queue_depth == 0
        );
    }
    assert_eq!(status.algorithm_switches, switches.len());

    // The headline self-asserts: demotion converts the baseline's shed
    // trial DMs, and never buys them with misses.
    let b = &baseline.report;
    let l = &ladder.report;
    assert!(
        b.total_shed_trials > 0,
        "the burst must actually overrun the brute-force fleet"
    );
    assert!(
        l.total_shed_trials * 2 <= b.total_shed_trials,
        "ladder must convert at least half the baseline's shed trial DMs \
         ({} vs {})",
        l.total_shed_trials,
        b.total_shed_trials
    );
    assert!(
        l.deadline_misses <= b.deadline_misses,
        "demotion must not add deadline misses"
    );
    assert!(
        demotions > 0,
        "the burst must trigger at least one demotion"
    );
    let converted = b.total_shed_trials - l.total_shed_trials;
    println!(
        "\ndemotion converted {converted} of {} shed trial DMs ({:.0}%) at {} added misses",
        b.total_shed_trials,
        100.0 * converted as f64 / b.total_shed_trials as f64,
        l.deadline_misses.saturating_sub(b.deadline_misses)
    );

    experiments::out::write_json_report(&AlgorithmComparison {
        baseline: baseline.report,
        ladder: ladder.report,
        algorithm_switches: switches.len(),
        demotions,
        promotions,
        shed_trials_converted: converted,
    });
}
