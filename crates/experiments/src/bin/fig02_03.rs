//! Regenerates Figures 2 and 3: tuned work-items per work-group.
use experiments::figures::{fig_workitems, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_workitems(&data, "Apertif", 2));
    println!();
    print!("{}", fig_workitems(&data, "LOFAR", 3));
}
