//! The live operator plane, end to end: runs a chaos-schedule grid
//! with the full observability stack attached — metrics registry,
//! flight recorder, live grid status, and the hand-rolled HTTP
//! server — then polls its own endpoints **while the run is in
//! flight** and self-asserts every payload:
//!
//! * `/healthz` answers `ok`;
//! * `/status` JSON deserializes into a `GridStatusSnapshot` mid-run
//!   and, after the run, agrees with the merged `GridReport`;
//! * `/status/shard/<i>` serves each shard's own fold (and 404s past
//!   the last shard);
//! * `/metrics` parses as Prometheus text exposition format 0.0.4 and
//!   its counters sum to the ledger;
//! * `/events` NDJSON round-trips through `TelemetryEvent` and
//!   replays through the report folds.
//!
//! Finally the same grid is re-run *without* observers and the two
//! normalized reports are diffed: live observation must never perturb
//! scheduling (the determinism guarantee of DESIGN.md §10, with the
//! racy per-device `max_queue_depth` excluded exactly as the chaos
//! fingerprint excludes it).

use dedisp_fleet::obs::{
    self, FlightRecorder, GridFanout, GridRegistry, GridStatusSnapshot, LiveGrid, MetricsRegistry,
    ObsServer, ObsState,
};
use dedisp_fleet::{
    Grid, GridFaultPlan, GridObserver, GridReport, GridRun, ResolvedFleet, StatusSnapshot,
    SurveyLoad, TelemetryEvent,
};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// The paper's measured HD7970 rate (Section V-D).
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

/// Trial DMs per beam (the paper's Apertif instance).
const TRIALS: usize = 2000;

/// Seconds of observation the grid simulates.
const TICKS: usize = 6;

/// Beams per second offered to the grid.
const BEAMS: usize = 30;

/// Devices per shard.
const SHARD_DEVICES: [usize; 2] = [3, 2];

/// Per-event pacing (real time) the throttle observer adds, so the
/// virtual-time run spans enough wall clock to be polled mid-flight.
const PACE: Duration = Duration::from_micros(400);

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

/// A pacing observer: sleeps a sliver of real time per event so the
/// run — which otherwise finishes in milliseconds of wall clock —
/// stays alive long enough for the mid-run polls to mean something.
/// Pacing real time never touches virtual time, so the ledger is
/// unchanged (asserted below against an unpaced run).
struct Throttle;

impl GridObserver for Throttle {
    fn observe_grid(&self, _shard: Option<usize>, _event: &TelemetryEvent) {
        std::thread::sleep(PACE);
    }
}

/// One normalized report: the racy per-device queue high-water zeroed,
/// exactly as the chaos determinism fingerprint does.
fn normalized(report: &GridReport) -> GridReport {
    let mut n = report.clone();
    for shard in &mut n.shards {
        for d in &mut shard.devices {
            d.max_queue_depth = 0;
        }
    }
    n
}

fn shards() -> Vec<ResolvedFleet> {
    SHARD_DEVICES
        .iter()
        .map(|&n| ResolvedFleet::synthetic(TRIALS, &vec![MEASURED_SECONDS_PER_BEAM / 2.0; n]))
        .collect()
}

/// The chaos schedule: a device flap on shard 0, a transient glitch on
/// shard 1, and a whole-shard flap forcing grid-level re-homing.
fn faults() -> GridFaultPlan {
    GridFaultPlan::none()
        .with_device_event(
            0,
            1,
            dedisp_fleet::FaultEvent::Flap {
                down_at: 0.4,
                up_at: 2.1,
            },
        )
        .with_device_event(
            1,
            0,
            dedisp_fleet::FaultEvent::Transient { at: 0.7, count: 2 },
        )
        .with_shard_flap(1, 2.3, 3.4)
}

fn get_ok(addr: SocketAddr, path: &str) -> obs::Fetched {
    let fetched = obs::get(addr, path).unwrap_or_else(|e| panic!("GET {path} failed: {e}"));
    assert_eq!(fetched.status, 200, "GET {path} must answer 200");
    fetched
}

/// A minimal exposition-format parser: `name{labels} value` samples,
/// keyed by the full series string. Asserts HELP/TYPE lines pair up.
fn parse_metrics(body: &str) -> Vec<(String, f64)> {
    let mut helps = 0usize;
    let mut types = 0usize;
    let mut samples = Vec::new();
    for line in body.lines() {
        if line.starts_with("# HELP ") {
            helps += 1;
        } else if line.starts_with("# TYPE ") {
            types += 1;
        } else if !line.is_empty() {
            let (series, value) = line
                .rsplit_once(' ')
                .expect("sample lines are `series value`");
            let value: f64 = match value {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                v => v
                    .parse()
                    .unwrap_or_else(|_| panic!("bad sample value: {line}")),
            };
            samples.push((series.to_string(), value));
        }
    }
    assert_eq!(helps, types, "every family has one HELP and one TYPE line");
    assert!(helps > 0, "the registry is not empty");
    samples
}

/// Sums every sample whose series starts with `prefix`.
fn sum_samples(samples: &[(String, f64)], prefix: &str) -> f64 {
    samples
        .iter()
        .filter(|(s, _)| s.starts_with(prefix))
        .map(|(_, v)| v)
        .sum()
}

fn main() {
    let shards = shards();
    let load = SurveyLoad::custom(TRIALS, BEAMS, TICKS);
    let plan = faults();

    // --- wire the operator plane -------------------------------------
    let registry = MetricsRegistry::new();
    let metrics = GridRegistry::new(&registry, &SHARD_DEVICES);
    let recorder = FlightRecorder::new(1 << 14);
    let live = LiveGrid::new(&SHARD_DEVICES);
    let server = ObsServer::bind(
        "127.0.0.1:0",
        ObsState::new(registry.clone(), recorder.clone(), live.clone()),
    )
    .expect("loopback bind");
    let addr = server.addr();
    headline(&format!("operator plane up on http://{addr}"));

    // --- run the chaos grid with the stack attached ------------------
    let done = AtomicBool::new(false);
    let throttle = Throttle;
    let sinks: [&dyn GridObserver; 4] = [&metrics, &recorder, &live, &throttle];
    let run: GridRun = std::thread::scope(|scope| {
        let fanout = GridFanout::new(&sinks);
        let shards = &shards;
        let load = &load;
        let plan = &plan;
        let done = &done;
        let handle = scope.spawn(move || {
            let run = Grid::session(shards)
                .load(load)
                .faults(plan)
                .run_with(&fanout)
                .expect("observed chaos grid run completes");
            done.store(true, Ordering::SeqCst);
            run
        });

        // Poll the endpoints while the shard threads are scheduling.
        let mut polls = 0usize;
        let mut mid_run_polls = 0usize;
        while !done.load(Ordering::SeqCst) {
            let status = get_ok(addr, "/status");
            let snapshot = GridStatusSnapshot::from_json(&status.body)
                .expect("mid-run /status JSON deserializes");
            let mid_run = !done.load(Ordering::SeqCst);
            polls += 1;
            if mid_run {
                mid_run_polls += 1;
                // A mid-run snapshot is a valid prefix fold: terminal
                // outcomes never exceed placements plus sheds.
                assert!(
                    snapshot.completed + snapshot.degraded + snapshot.deadline_misses
                        <= snapshot.placed,
                    "prefix fold: outcomes cannot outrun placements"
                );
            }
            let health = get_ok(addr, "/healthz");
            assert_eq!(health.body, "ok\n");
            let _ = parse_metrics(&get_ok(addr, "/metrics").body);
            std::thread::sleep(Duration::from_millis(25));
        }
        println!(
            "polled /status {polls} times, {mid_run_polls} strictly mid-run \
             (every payload parsed)"
        );
        assert!(
            mid_run_polls > 0,
            "the endpoints must be served *during* the run, not only after it"
        );
        handle.join().expect("grid thread panicked")
    });

    let report = &run.report;
    assert!(report.conservation_ok(), "chaos grid conserves every beam");
    metrics.record_reports(&report.shards.iter().collect::<Vec<_>>());

    // --- /status agrees with the merged ledger -----------------------
    headline("/status vs the merged GridReport");
    let snapshot = GridStatusSnapshot::from_json(&get_ok(addr, "/status").body)
        .expect("final /status JSON deserializes");
    assert_eq!(snapshot.completed, report.completed);
    assert_eq!(snapshot.degraded, report.degraded);
    assert_eq!(snapshot.deadline_misses, report.deadline_misses);
    assert_eq!(snapshot.shed_whole, report.shed_whole);
    assert_eq!(snapshot.total_shed_trials, report.total_shed_trials);
    assert_eq!(snapshot.rebalances, report.rehomed);
    assert_eq!(snapshot.shards.len(), report.shards.len());
    println!(
        "completed {} | degraded {} | missed {} | shed whole {} | rebalances {} — \
         all equal across endpoint and report",
        snapshot.completed,
        snapshot.degraded,
        snapshot.deadline_misses,
        snapshot.shed_whole,
        snapshot.rebalances
    );

    // --- per-shard endpoints -----------------------------------------
    for (s, shard_report) in report.shards.iter().enumerate() {
        let body = get_ok(addr, &format!("/status/shard/{s}")).body;
        let shard_snapshot =
            StatusSnapshot::from_json(&body).expect("shard /status JSON deserializes");
        assert_eq!(shard_snapshot.completed, shard_report.completed);
        assert_eq!(shard_snapshot.bounced, shard_report.bounced);
        assert_eq!(shard_snapshot.devices.len(), shard_report.devices.len());
        assert!(
            shard_snapshot.devices.iter().all(|d| d.queue_depth == 0),
            "finished shards have drained queues"
        );
    }
    let missing = obs::get(addr, &format!("/status/shard/{}", report.shards.len()))
        .expect("request succeeds");
    assert_eq!(missing.status, 404, "past-the-end shard is a 404");
    println!("per-shard endpoints agree with per-shard sub-reports; shard 2 is 404");

    // --- /metrics parses and sums to the ledger ----------------------
    headline("/metrics exposition");
    let metrics_body = get_ok(addr, "/metrics").body;
    let samples = parse_metrics(&metrics_body);
    let outcomes = sum_samples(&samples, "fleet_beams_total{");
    assert_eq!(
        outcomes as usize, report.admitted,
        "terminal-outcome counters sum to every admitted beam"
    );
    let sheds = sum_samples(&samples, "fleet_shed_trials_total");
    assert_eq!(sheds as usize, report.total_shed_trials);
    let rebalances = sum_samples(&samples, "fleet_grid_rebalances_total");
    assert_eq!(rebalances as usize, report.rehomed);
    // Histogram invariant straight off the wire: +Inf bucket == count.
    let inf_buckets = samples
        .iter()
        .filter(|(s, _)| s.starts_with("fleet_tick_drain_seconds_bucket") && s.contains("+Inf"));
    for (series, inf) in inf_buckets {
        let scope = series
            .split_once('{')
            .map(|(_, l)| l.split(",le=").next().unwrap_or(""))
            .unwrap_or("");
        let count_series = format!("fleet_tick_drain_seconds_count{{{scope}}}");
        let count = samples
            .iter()
            .find(|(s, _)| *s == count_series)
            .unwrap_or_else(|| panic!("no count series for {series}"))
            .1;
        assert_eq!(*inf, count, "+Inf bucket equals _count for {series}");
    }
    // The racy high-water gauges are present (and documented as
    // excluded from every determinism fingerprint).
    assert!(metrics_body.contains("fleet_device_max_queue_depth"));
    println!(
        "{} samples parsed; outcome counters sum to {} admitted beams",
        samples.len(),
        report.admitted
    );

    // --- /events round-trips and replays -----------------------------
    headline("/events NDJSON");
    let events_body = get_ok(addr, "/events?n=500").body;
    let tail = FlightRecorder::from_ndjson(&events_body).expect("NDJSON parses");
    assert!(!tail.is_empty());
    assert!(tail.len() <= 500);
    assert_eq!(
        FlightRecorder::to_ndjson(&tail),
        events_body,
        "NDJSON round-trips byte-for-byte through TelemetryEvent serde"
    );
    // The full recorder contents replay through the same fold the
    // status endpoint serves: replayed per-shard snapshots equal the
    // live ones.
    let everything = recorder.tail(usize::MAX);
    assert_eq!(everything.len(), run.events.len(), "ring dropped nothing");
    for (s, &devices) in SHARD_DEVICES.iter().enumerate() {
        let replayed = FlightRecorder::replay(&everything, Some(s), devices);
        let live_shard = live.shard_snapshot(s).expect("shard exists");
        assert_eq!(
            replayed, live_shard,
            "post-incident replay of shard {s} equals its live fold"
        );
    }
    println!(
        "{} recorded events; tail of {} round-tripped; per-shard replays equal live folds",
        everything.len(),
        tail.len()
    );

    // --- observation never perturbs scheduling -----------------------
    headline("determinism with the observer attached");
    let unobserved = Grid::session(&shards)
        .load(&load)
        .faults(&plan)
        .run()
        .expect("unobserved chaos grid run completes");
    assert_eq!(
        normalized(report).to_json(),
        normalized(&unobserved.report).to_json(),
        "observed and unobserved runs agree byte-for-byte (modulo the racy \
         max_queue_depth, excluded exactly as the chaos fingerprint excludes it)"
    );
    println!("observed ≡ unobserved: live observation is ledger-invisible");

    server.shutdown();
    experiments::out::write_json_report(report);
    println!("\nall endpoint assertions passed");
}
