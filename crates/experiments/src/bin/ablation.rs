//! Runs the model ablation study (see DESIGN.md §5 and §7).
fn main() {
    print!("{}", experiments::ablation::ablation_study());
}
