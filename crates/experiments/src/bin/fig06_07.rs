//! Regenerates Figures 6 and 7: tuned performance + real-time line.
use experiments::figures::{fig_performance, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_performance(&data, "Apertif", 6));
    println!();
    print!("{}", fig_performance(&data, "LOFAR", 7));
}
