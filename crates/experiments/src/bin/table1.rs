//! Regenerates Table I.
fn main() {
    print!("{}", experiments::figures::table1());
}
