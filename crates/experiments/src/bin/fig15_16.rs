//! Regenerates Figures 15 and 16: speedup over the CPU implementation.
use experiments::figures::{fig_cpu_speedup, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_cpu_speedup(&data, "Apertif", 15));
    println!();
    print!("{}", fig_cpu_speedup(&data, "LOFAR", 16));
}
