//! Replays the Section V-D Apertif survey sizing as an *operating*
//! fleet: the paper's "≈50 HD7970s sustain real time" estimate is run
//! end-to-end through the dedisp-fleet scheduler, then stressed with a
//! heterogeneous fleet and a fault run killing 10% of the devices.

use autotune::{ConfigSpace, TuningDatabase};
use dedisp_fleet::{FaultPlan, FleetRun, FleetSpec, ResolvedFleet, Scheduler, SurveyLoad};
use manycore_sim::{amd_hd7970, nvidia_gtx_titan, nvidia_k20};
use radioastro::SurveySizing;

/// Seconds of observation each scenario simulates.
const TICKS: usize = 5;

/// The paper's measured HD7970 time for one 2,000-DM beam-second
/// (Section V-D: "0.106 seconds to dedisperse one second of data").
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

fn summarize(run: &FleetRun) {
    let r = &run.report;
    println!(
        "{} devices | {} beams x {} ticks = {} beam-seconds admitted",
        r.devices.len(),
        r.beams,
        r.ticks,
        r.admitted
    );
    println!(
        "completed {} | degraded {} | deadline misses {} | shed whole {}",
        r.completed, r.degraded, r.deadline_misses, r.shed_whole
    );
    println!(
        "shed records {} ({} trial DMs) | mean surviving utilization {:5.1}% | conserved: {}",
        r.sheds.len(),
        r.total_shed_trials,
        100.0 * r.mean_surviving_utilization(),
        r.conservation_ok()
    );
}

fn main() {
    let sizing = SurveySizing::apertif_survey();
    let load = SurveyLoad::from_sizing(&sizing, TICKS);
    let mut db = TuningDatabase::new();
    let space = ConfigSpace::paper();

    // --- Scenario 1: the paper's measured sustained rate -------------
    // 0.106 s/beam => 9 beams per device => ceil(450 / 9) = 50 devices.
    let quoted = sizing
        .beams
        .div_ceil((1.0 / MEASURED_SECONDS_PER_BEAM).floor() as usize);
    headline(&format!(
        "S-V-D replay, measured rate: {quoted} HD7970s at {MEASURED_SECONDS_PER_BEAM} s/beam"
    ));
    let measured =
        ResolvedFleet::synthetic(sizing.trials, &vec![MEASURED_SECONDS_PER_BEAM; quoted]);
    let run = Scheduler::session(&measured)
        .load(&load)
        .run()
        .expect("measured fleet runs");
    summarize(&run);
    assert_eq!(run.report.deadline_misses, 0, "the paper's 50 GPUs keep up");
    assert_eq!(run.report.completed, run.report.admitted);

    // --- Scenario 2: the analytic model's own sizing -----------------
    let model_gflops = {
        let fleet = FleetSpec::homogeneous(amd_hd7970(), 1)
            .resolve(&mut db, &sizing.setup, sizing.trials, &space)
            .expect("HD7970 resolves");
        fleet.devices[0].gflops
    };
    let model_count = sizing.devices_needed(model_gflops);
    headline(&format!(
        "S-V-D replay, model rate: {model_count} HD7970s at {model_gflops:.1} GFLOP/s"
    ));
    let model_fleet = FleetSpec::homogeneous(amd_hd7970(), model_count)
        .resolve(&mut db, &sizing.setup, sizing.trials, &space)
        .expect("model fleet resolves");
    let run = Scheduler::session(&model_fleet)
        .load(&load)
        .run()
        .expect("model fleet runs");
    summarize(&run);
    assert_eq!(run.report.deadline_misses, 0, "model-sized fleet keeps up");

    // --- Scenario 3: heterogeneous fleet -----------------------------
    // Mix in the NVIDIA cards of Table I until capacity covers Apertif.
    let mut hetero = FleetSpec::new()
        .with_group(amd_hd7970(), 30)
        .with_group(nvidia_gtx_titan(), 30)
        .with_group(nvidia_k20(), 30)
        .resolve(&mut db, &sizing.setup, sizing.trials, &space)
        .expect("heterogeneous fleet resolves");
    while hetero.beams_capacity() < sizing.beams {
        // Top up with HD7970s if 90 mixed cards fall short.
        let extra = hetero.len() / 10;
        hetero = FleetSpec::new()
            .with_group(amd_hd7970(), 30 + extra)
            .with_group(nvidia_gtx_titan(), 30)
            .with_group(nvidia_k20(), 30)
            .resolve(&mut db, &sizing.setup, sizing.trials, &space)
            .expect("heterogeneous fleet resolves");
    }
    headline(&format!(
        "heterogeneous fleet: {} devices, capacity {} beams/s",
        hetero.len(),
        hetero.beams_capacity()
    ));
    let run = Scheduler::session(&hetero)
        .load(&load)
        .run()
        .expect("heterogeneous fleet runs");
    summarize(&run);
    assert_eq!(run.report.deadline_misses, 0, "mixed fleet keeps up");

    // --- Scenario 4: fault run, 10% of devices die mid-survey --------
    let faults = FaultPlan::kill_fraction(measured.len(), 0.10, 1.5);
    headline(&format!(
        "fault run: killing {} of {} devices at t=1.5 s",
        faults.len(),
        measured.len()
    ));
    let run = Scheduler::session(&measured)
        .load(&load)
        .faults(&faults)
        .run()
        .expect("fault run completes");
    summarize(&run);
    assert!(
        run.report.conservation_ok(),
        "every beam finished or reported shed - no silent loss"
    );
    println!("\n--- fault-run report (JSON) ---");
    println!("{}", run.report.to_json());
    experiments::out::write_json_report(&run.report);
}
