//! Regenerates Figure 10: performance histogram (HD7970, Apertif).
use experiments::figures::{fig_histogram, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_histogram(&data));
}
