//! Regenerates Figures 8 and 9: SNR of the optimum.
use experiments::figures::{fig_snr, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_snr(&data, "Apertif", 8));
    println!();
    print!("{}", fig_snr(&data, "LOFAR", 9));
}
