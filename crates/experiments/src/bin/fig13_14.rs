//! Regenerates Figures 13 and 14: speedup over the best fixed config.
use experiments::figures::{fig_fixed_speedup, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_fixed_speedup(&data, "Apertif", 13));
    println!();
    print!("{}", fig_fixed_speedup(&data, "LOFAR", 14));
}
