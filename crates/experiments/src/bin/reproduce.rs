//! Runs the complete evaluation: every table and figure, in paper order.
use experiments::figures::*;
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    let sections = [
        table1(),
        fig_workitems(&data, "Apertif", 2),
        fig_workitems(&data, "LOFAR", 3),
        fig_registers(&data, "Apertif", 4),
        fig_registers(&data, "LOFAR", 5),
        fig_performance(&data, "Apertif", 6),
        fig_performance(&data, "LOFAR", 7),
        fig_snr(&data, "Apertif", 8),
        fig_snr(&data, "LOFAR", 9),
        fig_histogram(&data),
        fig_zero_dm(&data, "Apertif", 11),
        fig_zero_dm(&data, "LOFAR", 12),
        fig_fixed_speedup(&data, "Apertif", 13),
        fig_fixed_speedup(&data, "LOFAR", 14),
        fig_cpu_speedup(&data, "Apertif", 15),
        fig_cpu_speedup(&data, "LOFAR", 16),
        sizing(&data),
        transfer_analysis(&data),
    ];
    for (i, s) in sections.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{s}");
    }
    // Persist the paper's "set of tuples" artifact next to the output.
    let db = data.tuning_database();
    let path = std::env::var("DEDISP_TUNED_DB")
        .unwrap_or_else(|_| "tuned_configurations.json".to_string());
    match std::fs::write(&path, db.to_json()) {
        Ok(()) => eprintln!("wrote {} tuned tuples to {path}", db.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
