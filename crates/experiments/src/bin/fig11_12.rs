//! Regenerates Figures 11 and 12: the 0-DM perfect-reuse scenario.
use experiments::figures::{fig_zero_dm, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_zero_dm(&data, "Apertif", 11));
    println!();
    print!("{}", fig_zero_dm(&data, "LOFAR", 12));
}
