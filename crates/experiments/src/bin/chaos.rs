//! Chaos harness: sweeps fault intensity against the §V-D Apertif
//! fleet and prints the degradation curve.
//!
//! The paper sizes Apertif at ≈50 HD7970s (0.106 s to dedisperse one
//! beam-second of 2,000 trial DMs). This binary runs that fleet at
//! exactly its real-time operating point and injects deterministic
//! fault schedules of growing intensity — killing, flapping, slowing
//! down, and glitching a rising fraction of the devices — then reports
//! how completions degrade into shed tiers, retries, and misses. A
//! final flap-only run demonstrates full recovery: once the outage
//! window closes, probes and canaries re-trust every device and the
//! fleet returns to zero misses.

use dedisp_fleet::{FaultPlan, FleetRun, HealthState, ResolvedFleet, Scheduler, SurveyLoad};
use radioastro::SurveySizing;

/// Seconds of observation each scenario simulates.
const TICKS: usize = 6;

/// The paper's measured HD7970 rate (Section V-D).
const MEASURED_SECONDS_PER_BEAM: f64 = 0.106;

/// When the chaos window opens (mid-survey, after steady state).
const ONSET: f64 = 1.5;

fn headline(title: &str) {
    println!("\n=== {title} ===");
}

/// Builds the intensity-`k` chaos plan: the first `k` devices are
/// impacted, cycling through the four fault kinds so every intensity
/// step mixes permanent, transient, and performance faults. Victim
/// sets are nested (step k+1 faults a superset of step k), so the
/// degradation curve is meaningfully monotone.
fn chaos_plan(victims: usize) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for d in 0..victims {
        plan = match d % 4 {
            0 => plan.with_kill(d, ONSET),
            1 => plan.with_flap(d, ONSET, ONSET + 1.5),
            2 => plan.with_slowdown(d, ONSET, ONSET + 2.0, 2.0),
            _ => plan.with_transient(d, ONSET, 3),
        };
    }
    plan
}

fn run(fleet: &ResolvedFleet, load: &SurveyLoad, faults: &FaultPlan) -> FleetRun {
    Scheduler::session(fleet)
        .load(load)
        .faults(faults)
        .run()
        .expect("chaos run completes")
}

fn main() {
    let sizing = SurveySizing::apertif_survey();
    let load = SurveyLoad::from_sizing(&sizing, TICKS);
    let devices = sizing
        .beams
        .div_ceil((1.0 / MEASURED_SECONDS_PER_BEAM).floor() as usize);
    let fleet = ResolvedFleet::synthetic(sizing.trials, &vec![MEASURED_SECONDS_PER_BEAM; devices]);

    headline(&format!(
        "degradation sweep: {} beams/s on {devices} HD7970s, faults open at t={ONSET} s",
        sizing.beams
    ));
    println!(
        "{:>9} {:>8} {:>9} {:>8} {:>6} {:>8} {:>8} {:>8} {:>10}",
        "intensity",
        "victims",
        "completed",
        "degraded",
        "missed",
        "shed",
        "bounced",
        "retries",
        "recoveries"
    );

    let mut last_impact = 0usize;
    for step in 0..=5 {
        let frac = step as f64 / 10.0;
        let victims = (devices as f64 * frac).round() as usize;
        let faults = chaos_plan(victims);
        let run = run(&fleet, &load, &faults);
        let r = &run.report;
        assert!(r.conservation_ok(), "chaos run lost a beam at {frac}");
        println!(
            "{:>8.0}% {:>8} {:>9} {:>8} {:>6} {:>8} {:>8} {:>8} {:>10}",
            100.0 * frac,
            victims,
            r.completed,
            r.degraded,
            r.deadline_misses,
            r.shed_whole,
            r.bounced,
            r.retries,
            r.recoveries
        );
        // Impact = admitted beams that did not complete clean. Victim
        // sets are nested, so impact must not shrink as intensity
        // grows.
        let impact = r.admitted - r.completed;
        assert!(
            impact >= last_impact,
            "degradation curve regressed: {last_impact} -> {impact} at {frac}"
        );
        last_impact = impact;
        if step == 0 {
            assert_eq!(r.completed, r.admitted, "zero intensity must run clean");
            assert_eq!(r.bounced, 0);
        }
    }
    assert!(last_impact > 0, "the sweep must actually bite at 50%");

    // --- recovery: flap 40% of the fleet, then watch it heal ---------
    let flapped = (devices as f64 * 0.4).round() as usize;
    let up_at = ONSET + 1.5;
    let mut faults = FaultPlan::none();
    for d in 0..flapped {
        faults = faults.with_flap(d, ONSET, up_at);
    }
    headline(&format!(
        "recovery run: flapping {flapped} of {devices} devices over [{ONSET}, {up_at}) s"
    ));
    let run = run(&fleet, &load, &faults);
    let r = &run.report;
    assert!(r.conservation_ok());
    println!(
        "bounced {} | retries {} | probes {} | canaries {} | recoveries {}",
        r.bounced, r.retries, r.probes, r.canaries, r.recoveries
    );

    // Per-tick outcome summary shows the dip and the climb back.
    for tick in 0..TICKS {
        let (mut done, mut deg, mut miss, mut shed) = (0, 0, 0, 0);
        for rec in run.records.iter().filter(|rec| rec.tick == tick) {
            match rec.outcome {
                dedisp_fleet::BeamOutcome::Completed { .. } => done += 1,
                dedisp_fleet::BeamOutcome::Degraded { .. } => deg += 1,
                dedisp_fleet::BeamOutcome::Missed { .. } => miss += 1,
                dedisp_fleet::BeamOutcome::ShedWhole { .. } => shed += 1,
            }
        }
        println!(
            "tick {tick}: completed {done:>3} | degraded {deg:>3} | missed {miss:>3} | shed {shed:>3}"
        );
    }

    // Full recovery: the last tick releases after every flap window
    // has closed and every flapped device has been canaried back, so
    // the fleet is at its §V-D operating point again — zero misses,
    // zero sheds, everything Healthy.
    let last = TICKS - 1;
    let last_records: Vec<_> = run.records.iter().filter(|rec| rec.tick == last).collect();
    assert!(last_records
        .iter()
        .all(|rec| matches!(rec.outcome, dedisp_fleet::BeamOutcome::Completed { .. })));
    assert!(
        r.devices
            .iter()
            .all(|d| d.final_health == HealthState::Healthy),
        "every flapped device must be re-trusted by the end"
    );
    assert!(r.recoveries >= flapped, "each flapped device recovers");
    assert!(r.devices.iter().all(|d| d.died_at.is_none()));
    println!(
        "recovered: tick {last} completed {}/{} with all {devices} devices Healthy",
        last_records.len(),
        sizing.beams
    );

    // --- determinism fingerprint -------------------------------------
    // Every field of the report is deterministic except each device's
    // `max_queue_depth`, which the real worker thread observes under OS
    // scheduling — the dispatcher replays verdicts at fixed sync points
    // in virtual-time order, but how deep the bounded queue gets before
    // the worker drains it depends on real thread interleaving. Zero
    // that field and print the rest as JSON so CI can run this binary
    // twice and diff the two outputs byte-for-byte.
    //
    // The observability layer records the same high-water marks as
    // `fleet_device_max_queue_depth` gauges (see
    // `RegistryObserver::record_report` and DESIGN.md §12): operators
    // *should* see them — a deep queue is a capacity signal — but they
    // are exactly the values this fingerprint excludes, so they must
    // never be folded into it (or into any other byte-diffed artifact).
    let mut normalized = r.clone();
    for device in &mut normalized.devices {
        device.max_queue_depth = 0;
    }
    headline("recovery report, normalized (JSON)");
    println!("{}", normalized.to_json());
    // `--json` writes the same normalized fingerprint, so scripted runs
    // can diff files instead of scraping stdout.
    experiments::out::write_json_report(&normalized);
}
