//! Regenerates Figures 4 and 5: tuned registers per work-item.
use experiments::figures::{fig_registers, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", fig_registers(&data, "Apertif", 4));
    println!();
    print!("{}", fig_registers(&data, "LOFAR", 5));
}
