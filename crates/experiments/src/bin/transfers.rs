//! Quantifies the paper's Section IV PCIe-exclusion assumption.
use experiments::figures::{transfer_analysis, PaperData};
use experiments::Harness;

fn main() {
    let data = PaperData::collect(Harness::paper());
    print!("{}", transfer_analysis(&data));
}
