//! Figure and table generators.
//!
//! [`PaperData::collect`] runs the complete tuning campaign once (every
//! device × setup × instance, real and 0-DM delays); each `fig_*`
//! function then renders one of the paper's figures from it.

use autotune::{best_fixed_config, stats::Histogram, SweepReport, TuningDatabase, TuningResult};
use cpu_baseline::tuned_cpu_gflops;
use manycore_sim::{all_devices, TransferEstimate, PCIE2_X16};
use radioastro::{ObservationalSetup, RealtimeCheck, SurveySizing};

use crate::render::{figure_table, kv_table, Series};
use crate::{workload_for, Harness};

/// Every tuning result needed to regenerate the paper's evaluation.
pub struct PaperData {
    /// The harness that produced the data.
    pub harness: Harness,
    /// Both observational setups, in figure order (Apertif, LOFAR).
    pub setups: Vec<ObservationalSetup>,
    /// `[setup][device]` sweeps with real delays.
    pub real: Vec<Vec<SweepReport>>,
    /// `[setup][device]` sweeps with all-zero delays (Section IV-C).
    pub zero_dm: Vec<Vec<SweepReport>>,
    /// `[setup][device][instance]` raw tuning results (real delays),
    /// retained for fixed-configuration and histogram analyses.
    pub raw: Vec<Vec<Vec<TuningResult>>>,
}

impl PaperData {
    /// Runs the full campaign.
    pub fn collect(harness: Harness) -> Self {
        let setups = vec![ObservationalSetup::apertif(), ObservationalSetup::lofar()];
        let devices = all_devices();
        let mut real = Vec::new();
        let mut zero = Vec::new();
        let mut raw = Vec::new();
        for setup in &setups {
            let mut real_s = Vec::new();
            let mut raw_s = Vec::new();
            for dev in &devices {
                let results = harness.sweep_results(dev, setup, false);
                let instances = harness
                    .instances
                    .iter()
                    .zip(&results)
                    .map(|(&t, r)| autotune::InstanceResult::from_tuning(t, r))
                    .collect();
                real_s.push(SweepReport {
                    device: dev.name.clone(),
                    setup: setup.name.clone(),
                    instances,
                });
                raw_s.push(results);
            }
            real.push(real_s);
            raw.push(raw_s);
            zero.push(harness.sweep_all_devices(setup, true));
        }
        Self {
            harness,
            setups,
            real,
            zero_dm: zero,
            raw,
        }
    }

    /// Collects every tuned optimum into the persistent database format
    /// (the paper's "set of tuples" output, Section IV-A).
    pub fn tuning_database(&self) -> TuningDatabase {
        let mut db = TuningDatabase::new();
        for (setup_reports, setup) in self.real.iter().zip(&self.setups) {
            for rep in setup_reports {
                for inst in &rep.instances {
                    db.insert(
                        &rep.device,
                        &setup.name,
                        inst.trials,
                        inst.best_config,
                        inst.best_gflops,
                    );
                }
            }
        }
        db
    }

    fn setup_index(&self, name: &str) -> usize {
        self.setups
            .iter()
            .position(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown setup {name}"))
    }
}

/// Table I: characteristics of the used many-core accelerators.
pub fn table1() -> String {
    let rows = all_devices()
        .iter()
        .map(|d| {
            (
                d.name.clone(),
                format!(
                    "CEs {:>4} ({} x {:>3})   {:>6.0} GFLOP/s   {:>4.0} GB/s",
                    d.compute_elements(),
                    d.elems_per_cu,
                    d.compute_units,
                    d.peak_gflops,
                    d.peak_bandwidth_gbs
                ),
            )
        })
        .collect::<Vec<_>>();
    kv_table(
        "Table I: characteristics of the used many-core accelerators",
        &rows,
    )
}

/// Figures 2 (Apertif) and 3 (LOFAR): tuned work-items per work-group.
pub fn fig_workitems(data: &PaperData, setup: &str, fignum: u32) -> String {
    let idx = data.setup_index(setup);
    let series: Vec<Series> = data.real[idx]
        .iter()
        .map(|rep| {
            Series::new(
                rep.device.clone(),
                rep.instances
                    .iter()
                    .map(|r| f64::from(r.work_items))
                    .collect(),
            )
        })
        .collect();
    figure_table(
        &format!("Figure {fignum}: tuned work-items per work-group, {setup}"),
        "work-items",
        &data.harness.instances,
        &series,
    )
}

/// Figures 4 (Apertif) and 5 (LOFAR): tuned registers per work-item.
pub fn fig_registers(data: &PaperData, setup: &str, fignum: u32) -> String {
    let idx = data.setup_index(setup);
    let series: Vec<Series> = data.real[idx]
        .iter()
        .map(|rep| {
            Series::new(
                rep.device.clone(),
                rep.instances
                    .iter()
                    .map(|r| f64::from(r.registers))
                    .collect(),
            )
        })
        .collect();
    figure_table(
        &format!("Figure {fignum}: tuned registers per work-item, {setup}"),
        "registers (el_time x el_dm)",
        &data.harness.instances,
        &series,
    )
}

/// Figures 6 (Apertif) and 7 (LOFAR): performance of auto-tuned
/// dedispersion, with the real-time threshold as the final column.
pub fn fig_performance(data: &PaperData, setup: &str, fignum: u32) -> String {
    let idx = data.setup_index(setup);
    let mut series: Vec<Series> = data.real[idx]
        .iter()
        .map(|rep| {
            Series::new(
                rep.device.clone(),
                rep.instances.iter().map(|r| r.best_gflops).collect(),
            )
        })
        .collect();
    let setup_cfg = &data.setups[idx];
    series.push(Series::new(
        "real-time",
        data.harness
            .instances
            .iter()
            .map(|&t| RealtimeCheck::for_setup(setup_cfg, t).required_gflops)
            .collect(),
    ));
    figure_table(
        &format!(
            "Figure {fignum}: performance of auto-tuned dedispersion, {setup} (higher is better)"
        ),
        "GFLOP/s",
        &data.harness.instances,
        &series,
    )
}

/// Figures 8 (Apertif) and 9 (LOFAR): signal-to-noise ratio of the
/// optimum over the optimization space.
pub fn fig_snr(data: &PaperData, setup: &str, fignum: u32) -> String {
    let idx = data.setup_index(setup);
    let series: Vec<Series> = data.real[idx]
        .iter()
        .map(|rep| {
            Series::new(
                rep.device.clone(),
                rep.instances.iter().map(|r| r.snr()).collect(),
            )
        })
        .collect();
    figure_table(
        &format!("Figure {fignum}: signal-to-noise ratio of the optimum, {setup}"),
        "SNR (sigma above the mean)",
        &data.harness.instances,
        &series,
    )
}

/// Figure 10: distribution of configurations over performance for the
/// HD7970 on Apertif (largest instance ≤ 2,048 trials).
pub fn fig_histogram(data: &PaperData) -> String {
    let idx = data.setup_index("Apertif");
    let hd = 0; // devices are in Table I order; HD7970 first
    let inst = data
        .harness
        .instances
        .iter()
        .position(|&t| t == 2048)
        .unwrap_or(data.harness.instances.len() - 1);
    let result = &data.raw[idx][hd][inst];
    let scores: Vec<f64> = result.samples.iter().map(|s| s.gflops).collect();
    let hist = Histogram::of_scores(&scores, 40);
    let mut out = String::new();
    out.push_str(&format!(
        "# Figure 10: performance histogram, {} @ {} DMs ({} configurations)\n",
        result.label,
        data.harness.instances[inst],
        scores.len()
    ));
    out.push_str("# columns: bin center GFLOP/s, configurations\n");
    for (center, count) in hist.bars() {
        out.push_str(&format!("{center:>10.2} {count:>6}\n"));
    }
    out.push_str(&format!(
        "# optimum: {:.2} GFLOP/s; mean {:.2}; top-bin population {}\n",
        result.best_gflops(),
        result.stats().mean,
        hist.top_bin_count()
    ));
    out
}

/// Figures 11 (Apertif) and 12 (LOFAR): tuned performance when every
/// trial DM is 0 — theoretically perfect data-reuse.
pub fn fig_zero_dm(data: &PaperData, setup: &str, fignum: u32) -> String {
    let idx = data.setup_index(setup);
    let series: Vec<Series> = data.zero_dm[idx]
        .iter()
        .map(|rep| {
            Series::new(
                rep.device.clone(),
                rep.instances.iter().map(|r| r.best_gflops).collect(),
            )
        })
        .collect();
    figure_table(
        &format!("Figure {fignum}: performance in a 0 DM scenario, {setup} (higher is better)"),
        "GFLOP/s",
        &data.harness.instances,
        &series,
    )
}

/// Figures 13 (Apertif) and 14 (LOFAR): speedup of the tuned optimum
/// over the best fixed configuration.
pub fn fig_fixed_speedup(data: &PaperData, setup: &str, fignum: u32) -> String {
    let idx = data.setup_index(setup);
    let series: Vec<Series> = data.raw[idx]
        .iter()
        .zip(&data.real[idx])
        .map(|(raw, rep)| {
            let cmp = best_fixed_config(raw);
            Series::new(rep.device.clone(), cmp.speedups())
        })
        .collect();
    figure_table(
        &format!("Figure {fignum}: speedup over fixed configuration, {setup} (higher is better)"),
        "speedup (tuned / fixed)",
        &data.harness.instances,
        &series,
    )
}

/// Figures 15 (Apertif) and 16 (LOFAR): speedup of each tuned
/// accelerator over the optimized CPU implementation.
pub fn fig_cpu_speedup(data: &PaperData, setup: &str, fignum: u32) -> String {
    let idx = data.setup_index(setup);
    let setup_cfg = &data.setups[idx];
    let cpu: Vec<f64> = data
        .harness
        .instances
        .iter()
        .map(|&t| tuned_cpu_gflops(&workload_for(setup_cfg, t, false)))
        .collect();
    let series: Vec<Series> = data.real[idx]
        .iter()
        .map(|rep| {
            Series::new(
                rep.device.clone(),
                rep.instances
                    .iter()
                    .zip(&cpu)
                    .map(|(r, c)| r.best_gflops / c)
                    .collect(),
            )
        })
        .collect();
    figure_table(
        &format!("Figure {fignum}: speedup over a CPU implementation, {setup} (higher is better)"),
        "speedup (device / Xeon E5-2620)",
        &data.harness.instances,
        &series,
    )
}

/// Section V-D: the Apertif survey sizing (2,000 DMs × 450 beams).
pub fn sizing(data: &PaperData) -> String {
    let idx = data.setup_index("Apertif");
    let survey = SurveySizing::apertif_survey();
    // Use the largest-instance tuned performance as the sustained rate.
    let mut rows = Vec::new();
    for rep in &data.real[idx] {
        let sustained = rep.instances.last().expect("non-empty sweep").best_gflops;
        let seconds = survey.seconds_per_beam(sustained);
        let beams = survey.beams_per_device(sustained);
        let devices = survey.devices_needed(sustained);
        rows.push((
            rep.device.clone(),
            if beams == 0 {
                format!("{sustained:>7.1} GFLOP/s  cannot dedisperse one beam in real time")
            } else {
                format!(
                    "{sustained:>7.1} GFLOP/s  {seconds:.3} s per 2,000-DM beam-second  {beams:>2} beams/device  {devices:>4} devices for 450 beams"
                )
            },
        ));
    }
    let cpu = tuned_cpu_gflops(&workload_for(&data.setups[idx], 2000, false));
    let cpu_beams = survey.beams_per_device(cpu);
    rows.push((
        "Intel Xeon E5-2620 (CPU)".into(),
        if cpu_beams == 0 {
            format!("{cpu:>7.1} GFLOP/s  cannot dedisperse one beam in real time")
        } else {
            format!(
                "{cpu:>7.1} GFLOP/s  {} beams/device  {} devices for 450 beams",
                cpu_beams,
                survey.devices_needed(cpu)
            )
        },
    ));
    kv_table(
        "Section V-D: real-time Apertif survey sizing (2,000 DMs x 450 beams)",
        &rows,
    )
}

/// Host↔device transfer analysis: quantifies the paper's Section IV
/// assumption that PCIe traffic can be excluded.
pub fn transfer_analysis(data: &PaperData) -> String {
    let mut out = String::new();
    out.push_str(
        "# Transfer analysis: PCIe 2.0 x16, per second of data (paper Section IV exclusion)\n",
    );
    out.push_str("# columns: setup, DMs, upload s, download s, total s, fits real-time alongside tuned HD7970 compute\n");
    for (idx, setup) in data.setups.iter().enumerate() {
        for inst in &data.real[idx][0].instances {
            let w = workload_for(setup, inst.trials, false);
            let t = TransferEstimate::estimate(&PCIE2_X16, &w);
            let compute_s = w.useful_flop as f64 / (inst.best_gflops * 1e9);
            out.push_str(&format!(
                "{:>8} {:>6} {:>9.4} {:>9.4} {:>9.4} {}\n",
                setup.name,
                inst.trials,
                t.upload_s,
                t.download_s,
                t.total_s(),
                if t.realtime_with_overlap(compute_s) {
                    "yes"
                } else {
                    "NO"
                }
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_data() -> PaperData {
        PaperData::collect(Harness::quick())
    }

    #[test]
    fn all_figures_render() {
        let data = quick_data();
        for s in ["Apertif", "LOFAR"] {
            assert!(fig_workitems(&data, s, 2).contains("work-items"));
            assert!(fig_registers(&data, s, 4).contains("registers"));
            assert!(fig_performance(&data, s, 6).contains("real-time"));
            assert!(fig_snr(&data, s, 8).contains("SNR"));
            assert!(fig_zero_dm(&data, s, 11).contains("0 DM"));
            assert!(fig_fixed_speedup(&data, s, 13).contains("speedup"));
            assert!(fig_cpu_speedup(&data, s, 15).contains("E5-2620"));
        }
        assert!(fig_histogram(&data).contains("histogram"));
        assert!(sizing(&data).contains("450 beams"));
        assert!(table1().contains("AMD HD7970"));
        assert!(transfer_analysis(&data).contains("PCIe"));
    }

    #[test]
    fn database_holds_every_tuned_cell() {
        let data = quick_data();
        let db = data.tuning_database();
        // 5 devices x 2 setups x 3 quick instances.
        assert_eq!(db.len(), 30);
        let (_, entry) = db
            .get_nearest("AMD HD7970", "Apertif", 10_000)
            .expect("largest instance matches");
        assert!(entry.gflops > 0.0);
        let roundtrip = TuningDatabase::from_json(&db.to_json()).unwrap();
        assert_eq!(roundtrip.len(), db.len());
    }

    #[test]
    fn paper_claims_hold_on_quick_harness() {
        let data = quick_data();
        let ap = data.setup_index("Apertif");
        let lo = data.setup_index("LOFAR");
        // Devices in Table I order.
        let hd = &data.real[ap][0];
        let phi = &data.real[ap][1];
        let largest = hd.instances.len() - 1;

        // HD7970 dominates Apertif; the Phi trails far behind.
        let hd_g = hd.instances[largest].best_gflops;
        let phi_g = phi.instances[largest].best_gflops;
        assert!(hd_g > 4.0 * phi_g, "HD {hd_g} vs Phi {phi_g}");

        // Every device is slower on LOFAR than on Apertif (real delays).
        for (a, l) in data.real[ap].iter().zip(&data.real[lo]) {
            assert!(
                l.instances[largest].best_gflops < a.instances[largest].best_gflops,
                "{}",
                a.device
            );
        }

        // 0-DM LOFAR recovers to within 2x of 0-DM Apertif for the GPUs
        // (the paper: "results are higher and in line with Apertif").
        for (a, l) in data.zero_dm[ap].iter().zip(&data.zero_dm[lo]) {
            if a.device.contains("Phi") {
                continue;
            }
            let ratio = a.instances[largest].best_gflops / l.instances[largest].best_gflops;
            assert!(ratio < 2.0, "{}: 0-DM ratio {ratio}", a.device);
        }
    }
}
