//! Plain-text rendering of figure series and tables.
//!
//! Each figure becomes a gnuplot-style table: one row per input
//! instance, one column per device — the same data the paper plots.

use std::fmt::Write as _;

/// A named series over the instance sweep.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (device name).
    pub name: String,
    /// One value per instance, aligned with the instance list.
    pub values: Vec<f64>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }
}

/// Renders a figure as an aligned text table.
///
/// # Panics
///
/// Panics if any series length differs from the instance count.
pub fn figure_table(title: &str, ylabel: &str, instances: &[usize], series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "# y: {ylabel}");
    let _ = write!(out, "{:>6}", "DMs");
    for s in series {
        let _ = write!(out, " {:>22}", s.name);
        assert_eq!(
            s.values.len(),
            instances.len(),
            "series {} has wrong length",
            s.name
        );
    }
    let _ = writeln!(out);
    for (i, &trials) in instances.iter().enumerate() {
        let _ = write!(out, "{trials:>6}");
        for s in series {
            let _ = write!(out, " {:>22.3}", s.values[i]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a simple two-column table (label, value).
pub fn kv_table(title: &str, rows: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        let _ = writeln!(out, "{k:<width$}  {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_layout() {
        let t = figure_table(
            "Figure X",
            "GFLOP/s",
            &[2, 4],
            &[
                Series::new("dev-a", vec![1.5, 2.5]),
                Series::new("dev-b", vec![3.0, 4.0]),
            ],
        );
        assert!(t.starts_with("# Figure X\n"));
        assert!(t.contains("dev-a"));
        assert!(t.contains("dev-b"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5); // 2 headers + column row + 2 data rows
        assert!(lines[3].trim_start().starts_with('2'));
        assert!(lines[3].contains("1.500"));
        assert!(lines[4].contains("4.000"));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn mismatched_series_panics() {
        let _ = figure_table("t", "y", &[2, 4], &[Series::new("a", vec![1.0])]);
    }

    #[test]
    fn kv_layout() {
        let t = kv_table(
            "Table",
            &[
                ("alpha".into(), "1".into()),
                ("betagamma".into(), "2".into()),
            ],
        );
        assert!(t.contains("alpha      1") || t.contains("alpha"));
        assert!(t.lines().count() == 3);
    }
}
