//! Model ablations: which mechanism produces which paper phenomenon.
//!
//! DESIGN.md §5 calls out the cost model's design choices. Each ablation
//! removes one mechanism and re-runs the full tuning experiment, showing
//! what that mechanism contributes:
//!
//! * `no-reuse` — restrict the search to single-trial tiles (no
//!   local-memory data-reuse). Collapses Apertif to LOFAR-like levels;
//!   this is the paper's central data-reuse argument.
//! * `no-ilp` — per-item unrolled accumulators no longer help hide
//!   latency. Hurts the register-heavy Kepler optima.
//! * `no-unroll` — unrolling no longer amortizes instruction overhead.
//!   Removes the K20/Titan register story of Figures 4–5.
//! * `element-lines` — 4-byte memory transactions (no cache-line
//!   granularity): misalignment becomes free, removing the paper's
//!   ≤ 2× overhead mechanism.

use autotune::{ConfigSpace, Executor, SimExecutor, Tuner};
use dedisp_core::KernelConfig;
use manycore_sim::{all_devices, CostModel, DeviceDescriptor, Workload};
use radioastro::ObservationalSetup;

use crate::render::kv_table;
use crate::workload_for;

/// One ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ablation {
    /// The unmodified model.
    Full,
    /// Single-trial tiles only: no DM-dimension data-reuse.
    NoReuse,
    /// `ilp_hiding = 0` on every device.
    NoIlp,
    /// `unroll_amortization = 0` on every device.
    NoUnroll,
    /// 4-byte transactions: no cache-line granularity.
    ElementLines,
}

impl Ablation {
    /// All variants, baseline first.
    pub const ALL: [Ablation; 5] = [
        Ablation::Full,
        Ablation::NoReuse,
        Ablation::NoIlp,
        Ablation::NoUnroll,
        Ablation::ElementLines,
    ];

    /// Short stable label.
    pub fn label(&self) -> &'static str {
        match self {
            Ablation::Full => "full",
            Ablation::NoReuse => "no-reuse",
            Ablation::NoIlp => "no-ilp",
            Ablation::NoUnroll => "no-unroll",
            Ablation::ElementLines => "element-lines",
        }
    }

    /// Applies the ablation to a device descriptor.
    pub fn apply(&self, mut device: DeviceDescriptor) -> DeviceDescriptor {
        match self {
            Ablation::Full | Ablation::NoReuse => {}
            Ablation::NoIlp => device.ilp_hiding = 0.0,
            Ablation::NoUnroll => device.unroll_amortization = 0.0,
            Ablation::ElementLines => device.cache_line_bytes = 4,
        }
        device
    }
}

/// A `SimExecutor` wrapper that (for `no-reuse`) filters the space down
/// to single-trial tiles.
struct AblatedExecutor<'a> {
    inner: SimExecutor<'a>,
    single_trial_only: bool,
}

impl Executor for AblatedExecutor<'_> {
    fn label(&self) -> String {
        self.inner.label()
    }

    fn configs(&self) -> Vec<KernelConfig> {
        let configs = self.inner.configs();
        if self.single_trial_only {
            configs.into_iter().filter(|c| c.tile_dm() == 1).collect()
        } else {
            configs
        }
    }

    fn measure(&self, config: &KernelConfig) -> Option<f64> {
        self.inner.measure(config)
    }
}

/// Tuned GFLOP/s of one (ablation, device, setup) cell at `trials` DMs.
pub fn ablated_gflops(
    ablation: Ablation,
    device: &DeviceDescriptor,
    setup: &ObservationalSetup,
    trials: usize,
    space: &ConfigSpace,
) -> f64 {
    let device = ablation.apply(device.clone());
    let workload: Workload = workload_for(setup, trials, false);
    let model = CostModel::new(device);
    let executor = AblatedExecutor {
        inner: SimExecutor::new(&model, &workload, space),
        single_trial_only: ablation == Ablation::NoReuse,
    };
    Tuner.tune(&executor).best_gflops()
}

/// Renders the full ablation study at 1,024 trial DMs.
pub fn ablation_study() -> String {
    let space = ConfigSpace::paper();
    let mut out = String::new();
    for setup in [ObservationalSetup::apertif(), ObservationalSetup::lofar()] {
        let mut rows = Vec::new();
        for device in all_devices() {
            let mut cells = Vec::new();
            for ab in Ablation::ALL {
                let g = ablated_gflops(ab, &device, &setup, 1024, &space);
                cells.push(format!("{}={:>6.1}", ab.label(), g));
            }
            rows.push((device.name.clone(), cells.join("  ")));
        }
        out.push_str(&kv_table(
            &format!(
                "Ablation study, {} @ 1024 DMs (tuned GFLOP/s per model variant)",
                setup.name
            ),
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use manycore_sim::{amd_hd7970, nvidia_k20};

    fn space() -> ConfigSpace {
        ConfigSpace::paper()
    }

    #[test]
    fn removing_reuse_collapses_apertif_not_lofar() {
        let hd = amd_hd7970();
        let apertif = ObservationalSetup::apertif();
        let lofar = ObservationalSetup::lofar();
        let s = space();
        let full_ap = ablated_gflops(Ablation::Full, &hd, &apertif, 1024, &s);
        let none_ap = ablated_gflops(Ablation::NoReuse, &hd, &apertif, 1024, &s);
        let full_lo = ablated_gflops(Ablation::Full, &hd, &lofar, 1024, &s);
        let none_lo = ablated_gflops(Ablation::NoReuse, &hd, &lofar, 1024, &s);
        // Apertif lives on reuse: > 4x loss. LOFAR barely has any: < 2x.
        assert!(
            full_ap / none_ap > 4.0,
            "Apertif loss {}",
            full_ap / none_ap
        );
        assert!(full_lo / none_lo < 2.0, "LOFAR loss {}", full_lo / none_lo);
        // And without reuse, Apertif sinks to the Eq. 2 roofline zone.
        assert!(none_ap < 70.0, "no-reuse Apertif {none_ap}");
    }

    #[test]
    fn removing_unroll_hurts_kepler_not_gcn() {
        let s = space();
        let apertif = ObservationalSetup::apertif();
        let k20 = nvidia_k20();
        let full = ablated_gflops(Ablation::Full, &k20, &apertif, 1024, &s);
        let cut = ablated_gflops(Ablation::NoUnroll, &k20, &apertif, 1024, &s);
        assert!(full / cut > 1.3, "K20 unroll gain {}", full / cut);

        let hd = amd_hd7970();
        let full = ablated_gflops(Ablation::Full, &hd, &apertif, 1024, &s);
        let cut = ablated_gflops(Ablation::NoUnroll, &hd, &apertif, 1024, &s);
        assert!(
            (full / cut - 1.0).abs() < 0.05,
            "HD unroll gain {}",
            full / cut
        );
    }

    #[test]
    fn element_granularity_never_hurts() {
        // Removing cache-line rounding can only reduce modeled traffic.
        let s = space();
        for setup in [ObservationalSetup::apertif(), ObservationalSetup::lofar()] {
            let hd = amd_hd7970();
            let full = ablated_gflops(Ablation::Full, &hd, &setup, 256, &s);
            let fine = ablated_gflops(Ablation::ElementLines, &hd, &setup, 256, &s);
            assert!(
                fine >= full * 0.97,
                "{}: full {full}, fine {fine}",
                setup.name
            );
        }
    }

    #[test]
    fn study_renders_all_cells() {
        let text = ablation_study();
        for ab in Ablation::ALL {
            assert!(text.contains(ab.label()), "{}", ab.label());
        }
        assert!(text.contains("AMD HD7970"));
        assert!(text.contains("LOFAR"));
    }
}
