//! Scriptable report output for the experiment binaries.
//!
//! Every fleet-layer binary (`fleet`, `grid`, `chaos`, `admission`,
//! `observe`) accepts `--json <path>` (or `--json=<path>`) and writes
//! its machine-readable report there, so runs are scriptable without
//! scraping stdout:
//!
//! ```text
//! cargo run --release -p experiments --bin chaos -- --json chaos.json
//! ```
//!
//! The stdout text output is unchanged either way (the CI determinism
//! job diffs it byte-for-byte), apart from a one-line note naming the
//! written file.

use serde::Serialize;
use std::path::PathBuf;

/// Parses `--json <path>` / `--json=<path>` out of the process
/// arguments; `None` when the flag is absent.
///
/// # Panics
///
/// Panics (with a usage message) if `--json` is given without a path —
/// the binaries are self-asserting harnesses, and a silently dropped
/// report would defeat the flag's purpose.
pub fn json_path() -> Option<PathBuf> {
    json_path_from(std::env::args().skip(1))
}

/// [`json_path`] over an explicit argument list (testable core).
pub fn json_path_from(args: impl IntoIterator<Item = String>) -> Option<PathBuf> {
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if let Some(path) = arg.strip_prefix("--json=") {
            return Some(PathBuf::from(path));
        }
        if arg == "--json" {
            let path = args.next().expect("--json requires a path argument");
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Writes `report` as pretty JSON to the `--json` path, if one was
/// given, and prints a one-line note saying so.
///
/// # Panics
///
/// Panics if serialization or the write fails — these binaries
/// self-assert, and a lost report must be loud.
pub fn write_json_report<T: Serialize + ?Sized>(report: &T) {
    if let Some(path) = json_path() {
        let json = serde_json::to_string_pretty(report).expect("report serializes");
        std::fs::write(&path, json)
            .unwrap_or_else(|e| panic!("failed to write --json report to {}: {e}", path.display()));
        println!("\nwrote JSON report to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn json_flag_parses_both_spellings_and_absence() {
        assert_eq!(json_path_from(strings(&[])), None);
        assert_eq!(json_path_from(strings(&["--verbose"])), None);
        assert_eq!(
            json_path_from(strings(&["--json", "out.json"])),
            Some(PathBuf::from("out.json"))
        );
        assert_eq!(
            json_path_from(strings(&["x", "--json=r/report.json"])),
            Some(PathBuf::from("r/report.json"))
        );
    }

    #[test]
    #[should_panic(expected = "--json requires a path")]
    fn json_flag_without_a_path_is_loud() {
        let _ = json_path_from(strings(&["--json"]));
    }
}
