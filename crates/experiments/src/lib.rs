//! # experiments — the paper's evaluation, regenerated
//!
//! One binary per table/figure of *Sclocco et al., IPDPS 2014*; this
//! library holds the shared harness: building workloads from
//! observational setups, running full tuning sweeps over the five
//! modeled accelerators, and rendering gnuplot-style series tables.
//!
//! | Binary      | Reproduces |
//! |-------------|------------|
//! | `table1`    | Table I (device characteristics) |
//! | `fig02_03`  | Tuned work-items per work-group vs #DMs |
//! | `fig04_05`  | Tuned registers per work-item vs #DMs |
//! | `fig06_07`  | Tuned performance + real-time line |
//! | `fig08_09`  | SNR of the optimum |
//! | `fig10`     | Performance histogram (HD7970, Apertif) |
//! | `fig11_12`  | 0-DM perfect-reuse performance |
//! | `fig13_14`  | Speedup over the best fixed configuration |
//! | `fig15_16`  | Speedup over the CPU implementation |
//! | `sizing`    | Section V-D Apertif deployment sizing |
//! | `ablation`  | Model-mechanism ablation study (DESIGN.md §5) |
//! | `reproduce` | Everything above, in order |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use autotune::{ConfigSpace, InstanceResult, SimExecutor, SweepReport, Tuner, TuningResult};
use manycore_sim::{all_devices, CostModel, DeviceDescriptor, Workload};
use radioastro::{ObservationalSetup, PAPER_INSTANCES};

pub mod ablation;
pub mod figures;
pub mod out;
pub mod render;

/// Builds the cost-model workload for a (setup, instance) cell.
pub fn workload_for(setup: &ObservationalSetup, trials: usize, zero_dm: bool) -> Workload {
    let grid = setup.dm_grid(trials).expect("paper instances are valid");
    let w = Workload::analytic(setup.name.clone(), &setup.band, &grid, setup.sample_rate)
        .expect("paper setups are valid");
    if zero_dm {
        w.zero_dm()
    } else {
        w
    }
}

/// The experiment driver: a configuration space plus an instance sweep.
pub struct Harness {
    /// Candidate configuration values.
    pub space: ConfigSpace,
    /// Input instances (trial-DM counts) to sweep.
    pub instances: Vec<usize>,
}

impl Harness {
    /// The paper-scale harness: the full space over instances 2–4,096.
    pub fn paper() -> Self {
        Self {
            space: ConfigSpace::paper(),
            instances: PAPER_INSTANCES.to_vec(),
        }
    }

    /// A fast harness for tests and demos.
    pub fn quick() -> Self {
        Self {
            space: ConfigSpace::reduced(),
            instances: vec![16, 256, 2048],
        }
    }

    /// Runs the full tuning sweep for one (device, setup) pair,
    /// returning the raw per-instance tuning results.
    pub fn sweep_results(
        &self,
        device: &DeviceDescriptor,
        setup: &ObservationalSetup,
        zero_dm: bool,
    ) -> Vec<TuningResult> {
        let model = CostModel::new(device.clone());
        self.instances
            .iter()
            .map(|&trials| {
                let w = workload_for(setup, trials, zero_dm);
                Tuner.tune(&SimExecutor::new(&model, &w, &self.space))
            })
            .collect()
    }

    /// Runs the sweep and summarizes it as a [`SweepReport`].
    pub fn sweep(
        &self,
        device: &DeviceDescriptor,
        setup: &ObservationalSetup,
        zero_dm: bool,
    ) -> SweepReport {
        let results = self.sweep_results(device, setup, zero_dm);
        let instances = self
            .instances
            .iter()
            .zip(&results)
            .map(|(&trials, r)| InstanceResult::from_tuning(trials, r))
            .collect();
        SweepReport {
            device: device.name.clone(),
            setup: if zero_dm {
                format!("{}-0dm", setup.name)
            } else {
                setup.name.clone()
            },
            instances,
        }
    }

    /// Sweeps every Table I device for one setup.
    pub fn sweep_all_devices(&self, setup: &ObservationalSetup, zero_dm: bool) -> Vec<SweepReport> {
        all_devices()
            .iter()
            .map(|dev| self.sweep(dev, setup, zero_dm))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manycore_sim::amd_hd7970;

    #[test]
    fn workload_matches_setup() {
        let w = workload_for(&ObservationalSetup::apertif(), 128, false);
        assert_eq!(w.trials, 128);
        assert_eq!(w.channels, 1024);
        assert!(!w.gradient.iter().all(|&g| g == 0.0));
        let z = workload_for(&ObservationalSetup::apertif(), 128, true);
        assert!(z.gradient.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn quick_sweep_produces_report() {
        let h = Harness::quick();
        let rep = h.sweep(&amd_hd7970(), &ObservationalSetup::apertif(), false);
        assert_eq!(rep.instances.len(), 3);
        assert_eq!(rep.device, "AMD HD7970");
        assert_eq!(rep.setup, "Apertif");
        assert!(rep.instances.iter().all(|r| r.best_gflops > 0.0));
    }

    #[test]
    fn zero_dm_sweep_is_labeled() {
        let h = Harness::quick();
        let rep = h.sweep(&amd_hd7970(), &ObservationalSetup::lofar(), true);
        assert_eq!(rep.setup, "LOFAR-0dm");
    }
}
