//! Property-based tests of the observational substrate: pulse recovery,
//! filterbank round-trips, and real-time threshold arithmetic.

use dedisp_core::prelude::*;
use proptest::prelude::*;
use radioastro::{
    detect_best_trial, Filterbank, ObservationalSetup, PulseSpec, RealtimeCheck, SignalGenerator,
};

fn arb_plan() -> impl Strategy<Value = DedispersionPlan> {
    (
        100.0f64..300.0, // low MHz — low band so delays are meaningful
        0.2f64..0.8,     // channel width
        16usize..40,     // channels
        200u32..500,     // sample rate
        4usize..16,      // trials
    )
        .prop_map(|(low, width, channels, rate, trials)| {
            DedispersionPlan::builder()
                .band(FrequencyBand::new(low, width, channels).expect("valid band"))
                .dm_grid(DmGrid::new(0.0, 1.0, trials).expect("valid grid"))
                .sample_rate(rate)
                .allocation_limit(128 << 20)
                .build()
                .expect("plan fits")
        })
        .prop_filter("bounded input", |p| {
            p.in_samples() * p.channels() < 1_000_000
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn injected_pulse_recovered_at_true_dm(
        plan in arb_plan(),
        trial_idx_frac in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let trial = ((plan.trials() - 1) as f64 * trial_idx_frac).round() as usize;
        let dm = plan.dm_grid().dm(trial);
        let sample = plan.out_samples() / 2;
        let input = SignalGenerator::new(seed)
            .noise_sigma(1.0)
            .pulse(PulseSpec::impulse(dm, sample, 4.0))
            .generate(&plan);
        let out = dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        let det = detect_best_trial(&out);
        // The strongest trial is the injected one (adjacent trials can
        // tie only when their delays are quantized identically).
        let best_dm = plan.dm_grid().dm(det.best_trial);
        prop_assert!(
            (best_dm - dm).abs() <= plan.dm_grid().step() + 1e-9,
            "injected {dm}, detected {best_dm}"
        );
        prop_assert_eq!(det.best().peak_sample, sample);
        prop_assert!(det.best().snr > 5.0, "snr {}", det.best().snr);
    }

    #[test]
    fn noiseless_pulse_sums_coherently(
        plan in arb_plan(),
    ) {
        let dm = plan.dm_grid().dm(plan.trials() - 1);
        let sample = 10;
        let input = SignalGenerator::new(0)
            .noise_sigma(0.0)
            .pulse(PulseSpec::impulse(dm, sample, 1.0))
            .generate(&plan);
        let out = dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        let trial = plan.trials() - 1;
        let peak = out.series(trial)[sample];
        prop_assert!(
            (peak - plan.channels() as f32).abs() < 1e-2,
            "peak {peak} != {}",
            plan.channels()
        );
    }

    #[test]
    fn filterbank_roundtrip(
        plan in arb_plan(),
        seed in any::<u64>(),
    ) {
        let data = SignalGenerator::new(seed).generate(&plan);
        let fb = Filterbank::new(*plan.band(), plan.sample_rate(), data).unwrap();
        let bytes = fb.to_bytes();
        let back = Filterbank::from_bytes(bytes).unwrap();
        prop_assert_eq!(back, fb);
    }

    #[test]
    fn realtime_threshold_is_linear_and_monotone(
        trials_a in 1usize..4096,
        trials_b in 1usize..4096,
    ) {
        for setup in [ObservationalSetup::apertif(), ObservationalSetup::lofar()] {
            let a = RealtimeCheck::for_setup(&setup, trials_a);
            let b = RealtimeCheck::for_setup(&setup, trials_b);
            let ratio = a.required_gflops / b.required_gflops;
            let expect = trials_a as f64 / trials_b as f64;
            prop_assert!((ratio - expect).abs() < 1e-9);
            prop_assert!(a.satisfied_by(a.required_gflops));
            prop_assert!(!a.satisfied_by(a.required_gflops * 0.999));
        }
    }

    #[test]
    fn noise_generation_is_seed_deterministic(
        plan in arb_plan(),
        seed in any::<u64>(),
    ) {
        let a = SignalGenerator::new(seed).generate(&plan);
        let b = SignalGenerator::new(seed).generate(&plan);
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}
