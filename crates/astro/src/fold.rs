//! Epoch folding: periodicity detection in dedispersed time-series.
//!
//! Pulsars are periodic; after dedispersion, a survey folds each series
//! at trial periods and tests the folded profile for structure. A flat
//! profile (noise) yields a reduced χ² near 1; a pulsed profile deviates
//! strongly. This module implements classic epoch folding with a χ²
//! significance test — the canonical step between the paper's kernel and
//! a pulsar catalog.

use serde::{Deserialize, Serialize};

/// A folded pulse profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FoldedProfile {
    /// Folding period in samples (may be fractional).
    pub period_samples: f64,
    /// Mean intensity per phase bin.
    pub bins: Vec<f64>,
    /// Samples contributing to each bin.
    pub counts: Vec<u64>,
}

impl FoldedProfile {
    /// χ² of the profile against a flat (no pulse) hypothesis, per
    /// degree of freedom, given the white-noise variance of a single
    /// sample. ≈ 1 for pure noise; ≫ 1 for a real pulse.
    pub fn reduced_chi2(&self, sample_variance: f64) -> f64 {
        let used: Vec<(f64, u64)> = self
            .bins
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(&b, &c)| (b, c))
            .collect();
        if used.len() < 2 || sample_variance <= 0.0 {
            return 0.0;
        }
        let total: f64 = used.iter().map(|(b, c)| b * *c as f64).sum();
        let n: f64 = used.iter().map(|(_, c)| *c as f64).sum();
        let mean = total / n;
        let chi2: f64 = used
            .iter()
            .map(|(b, c)| {
                let var_of_mean = sample_variance / *c as f64;
                (b - mean).powi(2) / var_of_mean
            })
            .sum();
        chi2 / (used.len() - 1) as f64
    }

    /// Index of the brightest phase bin.
    pub fn peak_bin(&self) -> usize {
        self.bins
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Folds `series` at `period_samples` into `bins` phase bins.
///
/// # Panics
///
/// Panics if `bins` is zero, the period is not positive, or the series
/// is shorter than one period.
pub fn fold(series: &[f32], period_samples: f64, bins: usize) -> FoldedProfile {
    assert!(bins > 0, "need at least one bin");
    assert!(
        period_samples > 0.0 && period_samples.is_finite(),
        "period must be positive"
    );
    assert!(
        series.len() as f64 >= period_samples,
        "series shorter than one period"
    );
    let mut sums = vec![0.0f64; bins];
    let mut counts = vec![0u64; bins];
    for (i, &v) in series.iter().enumerate() {
        let phase = (i as f64 / period_samples).fract();
        let bin = ((phase * bins as f64) as usize).min(bins - 1);
        sums[bin] += f64::from(v);
        counts[bin] += 1;
    }
    let bins_mean = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    FoldedProfile {
        period_samples,
        bins: bins_mean,
        counts,
    }
}

/// Result of a period search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodSearch {
    /// Every trial period with its reduced χ².
    pub trials: Vec<(f64, f64)>,
    /// The period with the highest χ².
    pub best_period_samples: f64,
    /// Its reduced χ².
    pub best_chi2: f64,
}

/// Folds `series` at every period in `periods_samples` and returns the
/// most significant.
///
/// # Panics
///
/// Panics if `periods_samples` is empty (or any fold precondition fails).
pub fn search_periods(series: &[f32], periods_samples: &[f64], bins: usize) -> PeriodSearch {
    assert!(!periods_samples.is_empty(), "need candidate periods");
    let n = series.len() as f64;
    let mean = series.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
    let var = series
        .iter()
        .map(|&v| (f64::from(v) - mean).powi(2))
        .sum::<f64>()
        / n;

    let trials: Vec<(f64, f64)> = periods_samples
        .iter()
        .map(|&p| (p, fold(series, p, bins).reduced_chi2(var)))
        .collect();
    let &(best_period_samples, best_chi2) = trials
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    PeriodSearch {
        trials,
        best_period_samples,
        best_chi2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise.
    fn noise(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let mut x = seed ^ (i as u64);
                x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                ((x >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn pulsed(n: usize, period: usize, amp: f32, seed: u64) -> Vec<f32> {
        let mut s = noise(n, seed);
        let mut i = 3;
        while i < n {
            s[i] += amp;
            i += period;
        }
        s
    }

    #[test]
    fn folding_bins_cover_all_samples() {
        let series = noise(1000, 1);
        let profile = fold(&series, 50.0, 25);
        assert_eq!(profile.counts.iter().sum::<u64>(), 1000);
        assert_eq!(profile.bins.len(), 25);
    }

    #[test]
    fn noise_folds_flat() {
        let series = noise(20_000, 7);
        let n = series.len() as f64;
        let mean = series.iter().map(|&v| f64::from(v)).sum::<f64>() / n;
        let var = series
            .iter()
            .map(|&v| (f64::from(v) - mean).powi(2))
            .sum::<f64>()
            / n;
        let profile = fold(&series, 73.0, 16);
        let chi2 = profile.reduced_chi2(var);
        assert!(chi2 < 3.0, "noise chi2 {chi2}");
    }

    #[test]
    fn pulse_at_true_period_is_significant() {
        let series = pulsed(20_000, 73, 2.0, 3);
        let search = search_periods(&series, &[50.0, 60.0, 73.0, 90.0, 110.0], 16);
        assert_eq!(search.best_period_samples, 73.0);
        assert!(search.best_chi2 > 10.0, "chi2 {}", search.best_chi2);
        // Off-period folds stay near noise level.
        for &(p, chi2) in &search.trials {
            if p != 73.0 {
                assert!(chi2 < search.best_chi2 / 2.0, "period {p}: chi2 {chi2}");
            }
        }
    }

    #[test]
    fn fractional_periods_fold_correctly() {
        let series = pulsed(30_000, 73, 2.0, 5);
        // 72.9 and 73.1 straddle the truth; exact 73 wins.
        let search = search_periods(&series, &[72.5, 73.0, 73.5], 16);
        assert_eq!(search.best_period_samples, 73.0);
    }

    #[test]
    fn peak_bin_locates_the_pulse_phase() {
        let series = pulsed(20_000, 100, 3.0, 9);
        let profile = fold(&series, 100.0, 20);
        // Pulse at sample offsets 3, 103, ... → phase 0.03 → bin 0.
        assert_eq!(profile.peak_bin(), 0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn bad_period_panics() {
        let _ = fold(&[0.0; 100], 0.0, 8);
    }

    #[test]
    #[should_panic(expected = "shorter than one period")]
    fn short_series_panics() {
        let _ = fold(&[0.0; 10], 50.0, 8);
    }
}
