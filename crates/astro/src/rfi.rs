//! Radio-frequency-interference (RFI) excision.
//!
//! Real telescope data arrives contaminated: narrowband carriers pin
//! single channels, broadband impulses (lightning, sparking) hit every
//! channel at one instant. Both masquerade as astrophysical signals
//! after dedispersion — a zero-DM broadband impulse shows up in *every*
//! trial — so every production pipeline excises RFI before the kernel.
//! This module provides the two standard cleaners:
//!
//! * [`mask_channels`] — flag channels whose total power deviates from
//!   the band median by more than `k` robust sigmas, and replace them
//!   with zeros (channel masking);
//! * [`clip_samples`] — flag time samples whose channel-summed (zero-DM)
//!   power is an outlier, and replace the affected samples in all
//!   channels (zero-DM clipping).

use dedisp_core::InputBuffer;
use serde::{Deserialize, Serialize};

/// What a cleaning pass did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExcisionReport {
    /// Indices of channels masked (for [`mask_channels`]).
    pub masked_channels: Vec<usize>,
    /// Indices of time samples clipped (for [`clip_samples`]).
    pub clipped_samples: Vec<usize>,
}

impl ExcisionReport {
    /// Whether anything was excised.
    pub fn is_clean(&self) -> bool {
        self.masked_channels.is_empty() && self.clipped_samples.is_empty()
    }
}

/// Median of a slice (interpolated for even lengths).
fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Median absolute deviation scaled to estimate σ for Gaussian data.
fn mad_sigma(values: &[f64], med: f64) -> f64 {
    let mut devs: Vec<f64> = values.iter().map(|v| (v - med).abs()).collect();
    1.4826 * median(&mut devs)
}

/// Masks channels whose mean power is more than `threshold_sigma` robust
/// standard deviations from the band median. Masked channels are zeroed
/// (a zero channel contributes nothing to any trial) and reported.
///
/// # Panics
///
/// Panics if the buffer has no channels or `threshold_sigma <= 0`.
pub fn mask_channels(buf: &mut InputBuffer, threshold_sigma: f64) -> ExcisionReport {
    assert!(threshold_sigma > 0.0, "threshold must be positive");
    assert!(buf.channels() > 0, "need channels");
    let powers: Vec<f64> = (0..buf.channels())
        .map(|ch| {
            let row = buf.channel(ch);
            row.iter().map(|&v| f64::from(v)).sum::<f64>() / row.len() as f64
        })
        .collect();
    let med = median(&mut powers.clone());
    let sigma = mad_sigma(&powers, med).max(f64::MIN_POSITIVE);

    let mut masked = Vec::new();
    for (ch, &p) in powers.iter().enumerate() {
        if (p - med).abs() > threshold_sigma * sigma {
            buf.channel_mut(ch).fill(0.0);
            masked.push(ch);
        }
    }
    ExcisionReport {
        masked_channels: masked,
        clipped_samples: Vec::new(),
    }
}

/// Clips time samples whose zero-DM (channel-summed) power deviates from
/// the median by more than `threshold_sigma` robust sigmas: the affected
/// instant is replaced by each channel's mean in every channel.
///
/// # Panics
///
/// Panics if the buffer is empty or `threshold_sigma <= 0`.
pub fn clip_samples(buf: &mut InputBuffer, threshold_sigma: f64) -> ExcisionReport {
    assert!(threshold_sigma > 0.0, "threshold must be positive");
    assert!(
        buf.channels() > 0 && buf.samples() > 0,
        "need a non-empty buffer"
    );
    let samples = buf.samples();
    let mut zero_dm = vec![0.0f64; samples];
    for ch in 0..buf.channels() {
        for (s, &v) in buf.channel(ch).iter().enumerate() {
            zero_dm[s] += f64::from(v);
        }
    }
    let med = median(&mut zero_dm.clone());
    let sigma = mad_sigma(&zero_dm, med).max(f64::MIN_POSITIVE);

    let clipped: Vec<usize> = zero_dm
        .iter()
        .enumerate()
        .filter(|(_, &p)| (p - med).abs() > threshold_sigma * sigma)
        .map(|(s, _)| s)
        .collect();

    if !clipped.is_empty() {
        for ch in 0..buf.channels() {
            let row = buf.channel_mut(ch);
            let mean = row.iter().map(|&v| f64::from(v)).sum::<f64>() / row.len() as f64;
            for &s in &clipped {
                row[s] = mean as f32;
            }
        }
    }
    ExcisionReport {
        masked_channels: Vec::new(),
        clipped_samples: clipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_best_trial;
    use crate::signal::{PulseSpec, SignalGenerator};
    use dedisp_core::prelude::*;

    fn plan() -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::new(0.0, 1.0, 16).unwrap())
            .sample_rate(500)
            .build()
            .unwrap()
    }

    #[test]
    fn clean_data_stays_untouched() {
        let p = plan();
        let mut buf = SignalGenerator::new(4).generate(&p);
        let before = buf.as_slice().to_vec();
        let r1 = mask_channels(&mut buf, 6.0);
        let r2 = clip_samples(&mut buf, 8.0);
        assert!(r1.is_clean(), "{:?}", r1.masked_channels);
        assert!(r2.is_clean(), "{:?}", r2.clipped_samples);
        assert_eq!(buf.as_slice(), &before[..]);
    }

    #[test]
    fn narrowband_carrier_is_masked() {
        let p = plan();
        let mut buf = SignalGenerator::new(5).generate(&p);
        // A strong carrier pins channel 11.
        for v in buf.channel_mut(11) {
            *v += 10.0;
        }
        let report = mask_channels(&mut buf, 5.0);
        assert_eq!(report.masked_channels, vec![11]);
        assert!(buf.channel(11).iter().all(|&v| v == 0.0));
        // Other channels survive.
        assert!(buf.channel(10).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn broadband_impulse_is_clipped() {
        let p = plan();
        let mut buf = SignalGenerator::new(6).generate(&p);
        // Lightning: every channel spikes at the same instant.
        for ch in 0..p.channels() {
            buf.channel_mut(ch)[321] += 8.0;
        }
        let report = clip_samples(&mut buf, 6.0);
        assert_eq!(report.clipped_samples, vec![321]);
        // The spike is gone: the zero-DM power at 321 is now ordinary.
        let total: f32 = (0..p.channels()).map(|ch| buf.channel(ch)[321]).sum();
        assert!(total.abs() < 3.0 * (p.channels() as f32).sqrt(), "{total}");
    }

    #[test]
    fn excision_preserves_a_real_dispersed_pulse() {
        // The point of zero-DM clipping: a *dispersed* pulse is spread
        // over many instants per channel, so it survives, while the
        // broadband zero-DM impulse dies.
        let p = plan();
        let true_dm = 9.0;
        let mut buf = SignalGenerator::new(7)
            .noise_sigma(1.0)
            .pulse(PulseSpec::impulse(true_dm, 150, 3.0))
            .generate(&p);
        for ch in 0..p.channels() {
            buf.channel_mut(ch)[40] += 8.0; // RFI blast at sample 40
        }

        // Without cleaning, trial 0 (DM 0) sees a huge fake candidate.
        let dirty = dedisp_core::kernel::dedisperse(&p, &buf).unwrap();
        let det_dirty = detect_best_trial(&dirty);
        assert_eq!(det_dirty.best_trial, 0, "RFI wins at DM 0");
        assert_eq!(det_dirty.best().peak_sample, 40);

        // After zero-DM clipping the real pulse wins at the right DM.
        let report = clip_samples(&mut buf, 6.0);
        assert_eq!(report.clipped_samples, vec![40]);
        let clean = dedisp_core::kernel::dedisperse(&p, &buf).unwrap();
        let det = detect_best_trial(&clean);
        assert_eq!(det.best_trial, p.dm_grid().nearest_trial(true_dm));
        assert_eq!(det.best().peak_sample, 150);
        assert!(det.best().snr > 8.0);
    }

    #[test]
    fn dead_channel_is_also_flagged() {
        let p = plan();
        let mut buf = SignalGenerator::new(8).noise_sigma(1.0).generate(&p);
        // Shift every channel up so a dead (all-zero… here all -5) channel
        // deviates downward.
        for ch in 0..p.channels() {
            for v in buf.channel_mut(ch) {
                *v += 5.0;
            }
        }
        buf.channel_mut(3).fill(0.0);
        let report = mask_channels(&mut buf, 5.0);
        assert!(report.masked_channels.contains(&3));
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn bad_threshold_panics() {
        let p = plan();
        let mut buf = InputBuffer::for_plan(&p);
        let _ = mask_channels(&mut buf, 0.0);
    }
}
