//! Observational setups (paper, Section IV).
//!
//! The two setups are deliberately complementary:
//!
//! * **Apertif** — 20,000 samples/s, 300 MHz of bandwidth in 1,024
//!   channels between 1,420 and 1,720 MHz. Computationally heavier
//!   (≈ 20 MFLOP per trial DM) but, because the frequencies are high,
//!   delays are small and much data-reuse is available.
//! * **LOFAR** — 200,000 samples/s, 6 MHz in 32 channels above 138 MHz.
//!   Lighter per trial (≈ 6 MFLOP) but at low frequencies the delays
//!   diverge rapidly, precluding almost any data-reuse.
//!
//! Both use a trial grid starting at 0 pc/cm³ with steps of 0.25 pc/cm³.

use dedisp_core::{DedispersionPlan, DmGrid, FrequencyBand, Result};
use serde::{Deserialize, Serialize};

/// The paper's input instances: the number of trial DMs is swept over
/// powers of two between 2 and 4,096 (Section IV-A).
pub const PAPER_INSTANCES: [usize; 12] = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// An observational setup: everything about the telescope configuration
/// that the dedispersion algorithm must adapt to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservationalSetup {
    /// Human-readable setup name ("Apertif", "LOFAR", …).
    pub name: String,
    /// The observed band and its channelization.
    pub band: FrequencyBand,
    /// Time resolution in samples per second.
    pub sample_rate: u32,
    /// First trial DM in pc/cm³.
    pub dm_first: f64,
    /// Increment between successive trial DMs in pc/cm³.
    pub dm_step: f64,
}

impl ObservationalSetup {
    /// The paper's Apertif setup (Westerbork telescope).
    pub fn apertif() -> Self {
        Self {
            name: "Apertif".to_string(),
            band: FrequencyBand::from_edges(1420.0, 1720.0, 1024)
                .expect("static Apertif band is valid"),
            sample_rate: 20_000,
            dm_first: 0.0,
            dm_step: 0.25,
        }
    }

    /// The paper's LOFAR setup.
    pub fn lofar() -> Self {
        Self {
            name: "LOFAR".to_string(),
            band: FrequencyBand::new(138.0, 6.0 / 32.0, 32).expect("static LOFAR band is valid"),
            sample_rate: 200_000,
            dm_first: 0.0,
            dm_step: 0.25,
        }
    }

    /// A miniature setup with the same band shape as `self` but reduced
    /// time resolution, for fast functional tests and examples. The
    /// channel count and frequencies are preserved (they determine the
    /// delay structure); only the sampling rate is scaled down.
    pub fn scaled(&self, sample_rate: u32) -> Self {
        Self {
            name: format!("{}-scaled", self.name),
            band: self.band,
            sample_rate,
            dm_first: self.dm_first,
            dm_step: self.dm_step,
        }
    }

    /// The trial-DM grid for an input instance of `trials` DMs.
    ///
    /// # Errors
    ///
    /// Returns an error if `trials` is zero.
    pub fn dm_grid(&self, trials: usize) -> Result<DmGrid> {
        DmGrid::new(self.dm_first, self.dm_step, trials)
    }

    /// Builds a dedispersion plan for an input instance of `trials` DMs,
    /// producing one second of output per invocation.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid or the plan's input
    /// buffer would exceed the default allocation limit.
    pub fn plan(&self, trials: usize) -> Result<DedispersionPlan> {
        DedispersionPlan::builder()
            .band(self.band)
            .dm_grid(self.dm_grid(trials)?)
            .sample_rate(self.sample_rate)
            .build()
    }

    /// Like [`ObservationalSetup::plan`] but with every delay forced to
    /// zero — the paper's perfect-data-reuse experiment (Section IV-C).
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid.
    pub fn plan_zero_dm(&self, trials: usize) -> Result<DedispersionPlan> {
        DedispersionPlan::builder()
            .band(self.band)
            .dm_grid(self.dm_grid(trials)?)
            .sample_rate(self.sample_rate)
            .zero_dm(true)
            .build()
    }

    /// MFLOP per trial DM per second of data (20 for Apertif, 6.4 for
    /// LOFAR; the paper rounds the latter to 6).
    pub fn mflop_per_dm(&self) -> f64 {
        f64::from(self.sample_rate) * self.band.channels() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apertif_matches_paper_parameters() {
        let s = ObservationalSetup::apertif();
        assert_eq!(s.sample_rate, 20_000);
        assert_eq!(s.band.channels(), 1024);
        assert!((s.band.low_mhz() - 1420.0).abs() < 1e-9);
        assert!((s.band.high_mhz() - 1720.0).abs() < 1e-9);
        assert!((s.band.channel_width_mhz() - 0.29296875).abs() < 1e-9);
        assert!((s.mflop_per_dm() - 20.48).abs() < 0.01);
    }

    #[test]
    fn lofar_matches_paper_parameters() {
        let s = ObservationalSetup::lofar();
        assert_eq!(s.sample_rate, 200_000);
        assert_eq!(s.band.channels(), 32);
        assert!((s.band.low_mhz() - 138.0).abs() < 1e-9);
        assert!((s.band.bandwidth_mhz() - 6.0).abs() < 1e-9);
        assert!((s.mflop_per_dm() - 6.4).abs() < 0.01);
    }

    #[test]
    fn apertif_three_times_lofar_flop() {
        // "the Apertif setup ... involves 20 MFLOP per DM, three times
        // more than the LOFAR setup with just 6 MFLOP per DM".
        let r = ObservationalSetup::apertif().mflop_per_dm()
            / ObservationalSetup::lofar().mflop_per_dm();
        assert!(r > 3.0 && r < 3.3, "ratio {r}");
    }

    #[test]
    fn paper_instances_are_powers_of_two() {
        assert_eq!(PAPER_INSTANCES.len(), 12);
        assert_eq!(PAPER_INSTANCES[0], 2);
        assert_eq!(PAPER_INSTANCES[11], 4096);
        for w in PAPER_INSTANCES.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn scaled_setup_keeps_band() {
        let s = ObservationalSetup::apertif().scaled(500);
        assert_eq!(s.sample_rate, 500);
        assert_eq!(s.band, ObservationalSetup::apertif().band);
        assert!(s.name.contains("scaled"));
    }

    #[test]
    fn plan_roundtrip() {
        let s = ObservationalSetup::lofar().scaled(1000);
        let plan = s.plan(16).unwrap();
        assert_eq!(plan.trials(), 16);
        assert_eq!(plan.channels(), 32);
        assert_eq!(plan.out_samples(), 1000);
        assert!(plan.in_samples() > plan.out_samples());
    }

    #[test]
    fn zero_dm_plan_has_zero_delays() {
        let s = ObservationalSetup::lofar().scaled(1000);
        let plan = s.plan_zero_dm(16).unwrap();
        assert!(plan.delays().is_zero());
    }

    #[test]
    fn lofar_reuse_much_worse_than_apertif() {
        // The per-trial delay gradient (samples of extra span per trial)
        // is orders of magnitude larger for LOFAR: this is the paper's
        // data-reuse asymmetry between the two setups.
        let ap = ObservationalSetup::apertif().plan(32).unwrap();
        let lo = ObservationalSetup::lofar()
            .scaled(200_000)
            .plan(32)
            .unwrap();
        let g_ap = ap.delays().gradient_samples_per_trial();
        let g_lo = lo.delays().gradient_samples_per_trial();
        let mean = |g: &[f64]| g.iter().sum::<f64>() / g.len() as f64;
        assert!(mean(&g_lo) > 50.0 * mean(&g_ap));
    }
}
