//! Synthetic channelized time-series with dispersed pulses.
//!
//! Since no telescope data is available to this reproduction, we generate
//! the closest synthetic equivalent: Gaussian radiometer noise plus one
//! or more impulsive broadband pulses, each dispersed with the *exact*
//! Eq. 1 delays of the plan's band. Dedispersing at the injected DM
//! re-aligns the pulse across channels (Figure 1 of the paper), which is
//! how the integration tests verify the whole pipeline.

use dedisp_core::delay::delay_samples;
use dedisp_core::{DedispersionPlan, InputBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A single impulsive broadband pulse to inject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PulseSpec {
    /// The true dispersion measure of the source, in pc/cm³.
    pub dm: f64,
    /// Emission time of the pulse at the top of the band, as an output
    /// sample index (i.e. the bin it lands in after dedispersion).
    pub sample: usize,
    /// Pulse amplitude per channel, in the same units as the noise σ.
    pub amplitude: f32,
    /// Pulse full width in samples (a boxcar of this many samples is
    /// added per channel; 1 = single-sample impulse).
    pub width: usize,
}

impl PulseSpec {
    /// A single-sample impulse of the given strength.
    pub fn impulse(dm: f64, sample: usize, amplitude: f32) -> Self {
        Self {
            dm,
            sample,
            amplitude,
            width: 1,
        }
    }
}

/// Deterministic generator of synthetic observations for a plan.
#[derive(Debug, Clone)]
pub struct SignalGenerator {
    seed: u64,
    noise_sigma: f32,
    pulses: Vec<PulseSpec>,
}

impl SignalGenerator {
    /// Creates a generator with reproducible noise from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            noise_sigma: 1.0,
            pulses: Vec::new(),
        }
    }

    /// Sets the per-channel Gaussian noise σ (default 1.0; 0 disables
    /// noise entirely).
    pub fn noise_sigma(mut self, sigma: f32) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "σ must be ≥ 0");
        self.noise_sigma = sigma;
        self
    }

    /// Adds a pulse to inject.
    pub fn pulse(mut self, pulse: PulseSpec) -> Self {
        self.pulses.push(pulse);
        self
    }

    /// The configured pulses.
    pub fn pulses(&self) -> &[PulseSpec] {
        &self.pulses
    }

    /// Generates the channelized input for `plan`: noise first, then each
    /// pulse dispersed with Eq. 1 relative to the top of the band.
    pub fn generate(&self, plan: &DedispersionPlan) -> InputBuffer {
        let mut buf = InputBuffer::for_plan(plan);
        let mut rng = StdRng::seed_from_u64(self.seed);

        if self.noise_sigma > 0.0 {
            // Box-Muller on uniform draws keeps us independent of
            // rand_distr while staying genuinely Gaussian.
            let data = buf.as_mut_slice();
            let mut i = 0;
            while i < data.len() {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0..1.0);
                let r = (-2.0 * u1.ln()).sqrt() * self.noise_sigma;
                let theta = 2.0 * std::f32::consts::PI * u2;
                data[i] = r * theta.cos();
                if i + 1 < data.len() {
                    data[i + 1] = r * theta.sin();
                }
                i += 2;
            }
        }

        let f_ref = plan.band().high_mhz();
        let in_samples = plan.in_samples();
        for pulse in &self.pulses {
            for ch in 0..plan.channels() {
                let f = plan.band().channel_mhz(ch);
                let shift = delay_samples(pulse.dm, f, f_ref, plan.sample_rate());
                let start = pulse.sample + shift;
                for s in start..(start + pulse.width).min(in_samples) {
                    buf.channel_mut(ch)[s] += pulse.amplitude;
                }
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisp_core::prelude::*;

    fn plan() -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::new(0.0, 1.0, 8).unwrap())
            .sample_rate(500)
            .build()
            .unwrap()
    }

    #[test]
    fn noise_is_reproducible() {
        let p = plan();
        let a = SignalGenerator::new(42).generate(&p);
        let b = SignalGenerator::new(42).generate(&p);
        assert_eq!(a.as_slice(), b.as_slice());
        let c = SignalGenerator::new(43).generate(&p);
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn noise_statistics_are_sane() {
        let p = plan();
        let buf = SignalGenerator::new(1).noise_sigma(2.0).generate(&p);
        let n = buf.as_slice().len() as f64;
        let mean = buf.as_slice().iter().map(|&v| v as f64).sum::<f64>() / n;
        let var = buf
            .as_slice()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "sigma {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_noiseless() {
        let p = plan();
        let buf = SignalGenerator::new(7).noise_sigma(0.0).generate(&p);
        assert!(buf.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pulse_lands_at_dispersed_positions() {
        let p = plan();
        let pulse = PulseSpec::impulse(4.0, 50, 3.0);
        let buf = SignalGenerator::new(0)
            .noise_sigma(0.0)
            .pulse(pulse)
            .generate(&p);
        let f_ref = p.band().high_mhz();
        for ch in [0usize, 15, 31] {
            let shift = delay_samples(4.0, p.band().channel_mhz(ch), f_ref, p.sample_rate());
            assert_eq!(buf.channel(ch)[50 + shift], 3.0, "channel {ch}");
        }
        // The lowest channel is delayed more than the highest.
        let s_lo = delay_samples(4.0, p.band().channel_mhz(0), f_ref, p.sample_rate());
        let s_hi = delay_samples(4.0, p.band().channel_mhz(31), f_ref, p.sample_rate());
        assert!(s_lo > s_hi);
    }

    #[test]
    fn dedispersion_realigns_pulse_at_true_dm() {
        let p = plan();
        let pulse = PulseSpec::impulse(4.0, 50, 1.0);
        let buf = SignalGenerator::new(0)
            .noise_sigma(0.0)
            .pulse(pulse)
            .generate(&p);
        let out = dedisp_core::kernel::dedisperse(&p, &buf).unwrap();
        // Trial index 4 has DM exactly 4.0 (grid step 1.0).
        let trial = p.dm_grid().nearest_trial(4.0);
        let series = out.series(trial);
        let peak = series.iter().cloned().fold(f32::MIN, f32::max);
        assert_eq!(series[50], peak);
        // Full coherent sum: all 32 channels align.
        assert!((series[50] - 32.0).abs() < 1e-3, "peak {}", series[50]);
        // A distant trial smears the pulse: its maximum is much smaller.
        let far = out.series(0);
        let far_peak = far.iter().cloned().fold(f32::MIN, f32::max);
        assert!(far_peak < 0.6 * series[50], "far peak {far_peak}");
    }

    #[test]
    fn wide_pulse_adds_boxcar() {
        let p = plan();
        let pulse = PulseSpec {
            dm: 0.0,
            sample: 10,
            amplitude: 2.0,
            width: 5,
        };
        let buf = SignalGenerator::new(0)
            .noise_sigma(0.0)
            .pulse(pulse)
            .generate(&p);
        for s in 10..15 {
            assert_eq!(buf.channel(0)[s], 2.0);
        }
        assert_eq!(buf.channel(0)[9], 0.0);
        assert_eq!(buf.channel(0)[15], 0.0);
    }

    #[test]
    fn multiple_pulses_superpose() {
        let p = plan();
        let buf = SignalGenerator::new(0)
            .noise_sigma(0.0)
            .pulse(PulseSpec::impulse(0.0, 20, 1.0))
            .pulse(PulseSpec::impulse(0.0, 20, 2.0))
            .generate(&p);
        assert_eq!(buf.channel(5)[20], 3.0);
    }
}
