//! Trial-DM grid planning from smearing analysis.
//!
//! The paper notes that the DM search space cannot be pruned: a slightly
//! wrong trial DM smears the pulse below the noise floor (Section II).
//! The flip side is that trials *closer* than the intrinsic smearing are
//! redundant. Survey pipelines therefore plan the trial grid so that the
//! step-induced smearing stays comparable to the unavoidable smearing —
//! sampling time, intra-channel dispersion, and the pulse's own width —
//! with the step growing as channel smearing (∝ DM) starts to dominate.
//! This module is that planner (the PRESTO "DDplan" equivalent), built
//! on the same Eq. 1 as everything else in this workspace.

use dedisp_core::delay::delay_seconds;
use dedisp_core::{DmGrid, Result};
use serde::{Deserialize, Serialize};

use crate::setup::ObservationalSetup;

/// One constant-step segment of a planned DM search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmSegment {
    /// The trials of this segment.
    pub grid: DmGrid,
    /// Effective pulse broadening (seconds) at the segment's top DM:
    /// quadrature sum of sampling, channel smear, pulse width, and the
    /// worst-case step smear.
    pub smear_at_end_s: f64,
}

/// A complete piecewise-linear DM search plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DmPlan {
    /// Segments in ascending DM order; consecutive segments double the
    /// step.
    pub segments: Vec<DmSegment>,
}

impl DmPlan {
    /// Total number of trial DMs across all segments.
    pub fn total_trials(&self) -> usize {
        self.segments.iter().map(|s| s.grid.count()).sum()
    }

    /// Iterates over every trial DM in ascending order.
    pub fn trial_dms(&self) -> impl Iterator<Item = f64> + '_ {
        self.segments.iter().flat_map(|s| s.grid.values())
    }

    /// The largest planned trial DM.
    pub fn max_dm(&self) -> f64 {
        self.segments.last().map(|s| s.grid.max_dm()).unwrap_or(0.0)
    }
}

/// Planner parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmPlanner {
    /// Highest DM to search, in pc/cm³.
    pub max_dm: f64,
    /// Narrowest pulse width to stay sensitive to, in seconds.
    pub pulse_width_s: f64,
    /// Allowed ratio of step-induced smear to intrinsic smear (≥ that,
    /// the step doubles). Typical: 1.0–1.5.
    pub tolerance: f64,
}

impl DmPlanner {
    /// A conventional planner: tolerance 1.25.
    pub fn new(max_dm: f64, pulse_width_s: f64) -> Self {
        Self {
            max_dm,
            pulse_width_s,
            tolerance: 1.25,
        }
    }

    /// Dispersion delay across the full band per unit DM, in s/(pc/cm³):
    /// the sensitivity of the search to a DM error.
    pub fn band_delay_per_dm(setup: &ObservationalSetup) -> f64 {
        delay_seconds(1.0, setup.band.low_mhz(), setup.band.high_mhz())
    }

    /// Intra-channel smearing at DM `dm`, in seconds: the delay spread
    /// across the width of the band's *lowest* (worst) channel.
    pub fn channel_smear_s(setup: &ObservationalSetup, dm: f64) -> f64 {
        let lo = setup.band.channel_mhz(0);
        let hi = lo + setup.band.channel_width_mhz();
        delay_seconds(dm, lo, hi)
    }

    /// Effective broadening (s) at `dm` for a given step, quadrature sum
    /// of all four contributions.
    pub fn effective_smear_s(&self, setup: &ObservationalSetup, dm: f64, step: f64) -> f64 {
        let t_samp = 1.0 / f64::from(setup.sample_rate);
        let t_chan = Self::channel_smear_s(setup, dm);
        // Worst-case trial offset is half a step.
        let t_step = 0.5 * step * Self::band_delay_per_dm(setup);
        (t_samp * t_samp
            + t_chan * t_chan
            + self.pulse_width_s * self.pulse_width_s
            + t_step * t_step)
            .sqrt()
    }

    /// Plans the piecewise grid for `setup`.
    ///
    /// The base step makes the worst-case step smear equal to
    /// `tolerance ×` the zero-DM intrinsic smear; the step doubles each
    /// time the intrinsic smear (dominated by channel smearing at high
    /// DM) grows past the current step's contribution.
    ///
    /// # Errors
    ///
    /// Returns an error if the planner parameters produce an invalid
    /// grid (e.g. `max_dm <= 0`).
    pub fn plan(&self, setup: &ObservationalSetup) -> Result<DmPlan> {
        let t_samp = 1.0 / f64::from(setup.sample_rate);
        let band_rate = Self::band_delay_per_dm(setup);
        let intrinsic_0 = (t_samp * t_samp + self.pulse_width_s * self.pulse_width_s).sqrt();
        // Base step: half-step smear = tolerance x intrinsic at DM 0.
        let base_step = 2.0 * self.tolerance * intrinsic_0 / band_rate;

        let mut segments = Vec::new();
        let mut dm = 0.0f64;
        let mut step = base_step;
        while dm < self.max_dm {
            // This step stays adequate while the channel smear is below
            // what the *next* step size would tolerate.
            let next_step = step * 2.0;
            let smear_ceiling = self.tolerance * 0.5 * next_step * band_rate;
            // Channel smear is linear in DM: find where it crosses.
            let chan_rate = Self::channel_smear_s(setup, 1.0); // s per pc/cm³
            let dm_break = if chan_rate > 0.0 {
                (smear_ceiling / chan_rate).max(dm + step)
            } else {
                self.max_dm
            };
            let seg_end = dm_break.min(self.max_dm);
            let count = ((seg_end - dm) / step).ceil().max(1.0) as usize;
            let grid = DmGrid::new(dm, step, count)?;
            let end_dm = grid.max_dm();
            segments.push(DmSegment {
                grid,
                smear_at_end_s: self.effective_smear_s(setup, end_dm, step),
            });
            dm = end_dm + step;
            step = next_step;
        }
        Ok(DmPlan { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_delay_rates_match_setups() {
        // LOFAR's low band is vastly more dispersive per unit DM.
        let ap = DmPlanner::band_delay_per_dm(&ObservationalSetup::apertif());
        let lo = DmPlanner::band_delay_per_dm(&ObservationalSetup::lofar());
        assert!(lo > 20.0 * ap, "lofar {lo}, apertif {ap}");
        // Apertif: 4150 * (1/1420² - 1/1720²) ≈ 6.55e-4 s.
        assert!((ap - 6.55e-4).abs() < 1e-5, "{ap}");
    }

    #[test]
    fn channel_smear_linear_in_dm() {
        let setup = ObservationalSetup::lofar();
        let a = DmPlanner::channel_smear_s(&setup, 10.0);
        let b = DmPlanner::channel_smear_s(&setup, 20.0);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn plan_covers_range_with_doubling_steps() {
        let planner = DmPlanner::new(500.0, 1e-3);
        let plan = planner.plan(&ObservationalSetup::apertif()).unwrap();
        assert!(!plan.segments.is_empty());
        assert!(plan.max_dm() >= 500.0 - plan.segments.last().unwrap().grid.step());
        for pair in plan.segments.windows(2) {
            assert!((pair[1].grid.step() / pair[0].grid.step() - 2.0).abs() < 1e-9);
            // Segments are contiguous and ascending.
            assert!(pair[1].grid.first() > pair[0].grid.max_dm());
        }
        // Trials are strictly ascending across the whole plan.
        let dms: Vec<f64> = plan.trial_dms().collect();
        assert_eq!(dms.len(), plan.total_trials());
        assert!(dms.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn finer_time_resolution_needs_finer_steps() {
        let coarse = ObservationalSetup::apertif().scaled(2_000);
        let fine = ObservationalSetup::apertif(); // 20,000 samples/s
        let planner = DmPlanner::new(100.0, 0.0);
        let plan_coarse = planner.plan(&coarse).unwrap();
        let plan_fine = planner.plan(&fine).unwrap();
        assert!(
            plan_fine.segments[0].grid.step() < plan_coarse.segments[0].grid.step(),
            "fine {} vs coarse {}",
            plan_fine.segments[0].grid.step(),
            plan_coarse.segments[0].grid.step()
        );
        assert!(plan_fine.total_trials() > plan_coarse.total_trials());
    }

    #[test]
    fn lofar_needs_far_finer_steps_than_apertif() {
        // The same physical DM range requires many more trials at low
        // frequency — why LOFAR searches are so much deeper.
        let planner = DmPlanner::new(100.0, 1e-3);
        let ap = planner.plan(&ObservationalSetup::apertif()).unwrap();
        let lo = planner.plan(&ObservationalSetup::lofar()).unwrap();
        assert!(
            lo.segments[0].grid.step() < ap.segments[0].grid.step() / 10.0,
            "lofar step {} vs apertif {}",
            lo.segments[0].grid.step(),
            ap.segments[0].grid.step()
        );
    }

    #[test]
    fn smear_at_end_is_monotone_nondecreasing() {
        let planner = DmPlanner::new(1000.0, 5e-4);
        let plan = planner.plan(&ObservationalSetup::apertif()).unwrap();
        for pair in plan.segments.windows(2) {
            assert!(pair[1].smear_at_end_s >= pair[0].smear_at_end_s * 0.99);
        }
    }

    #[test]
    fn paper_grid_is_consistent_with_planner_scale() {
        // The paper's fixed 0.25 pc/cm³ step sits in the range a planner
        // would choose for Apertif's resolution (same order of magnitude).
        let planner = DmPlanner::new(100.0, 0.0);
        let plan = planner.plan(&ObservationalSetup::apertif()).unwrap();
        let base = plan.segments[0].grid.step();
        assert!(base > 0.025 && base < 2.5, "base step {base}");
    }
}
