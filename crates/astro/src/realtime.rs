//! The real-time constraint and survey sizing (paper, Figures 6–7 and
//! Section V-D).
//!
//! Modern radio telescopes cannot store their input streams — dedispersion
//! must keep up: one second of data must be dedispersed in at most one
//! second of computation. In the paper's GFLOP/s metric the threshold is
//! a line growing linearly with the number of trial DMs; a platform whose
//! sustained GFLOP/s sits below the line cannot run that instance live.

use serde::{Deserialize, Serialize};

use crate::setup::ObservationalSetup;

/// The real-time feasibility check for one (setup, instance) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RealtimeCheck {
    /// Number of trial DMs.
    pub trials: usize,
    /// The minimum sustained GFLOP/s required.
    pub required_gflops: f64,
}

impl RealtimeCheck {
    /// Computes the threshold for `trials` DMs under `setup`:
    /// `trials × samples/s × channels` flop must complete per second.
    pub fn for_setup(setup: &ObservationalSetup, trials: usize) -> Self {
        let required = trials as f64 * setup.mflop_per_dm() * 1e6 / 1e9;
        Self {
            trials,
            required_gflops: required,
        }
    }

    /// Whether a platform sustaining `gflops` meets the constraint.
    pub fn satisfied_by(&self, gflops: f64) -> bool {
        gflops >= self.required_gflops
    }

    /// Seconds of computation needed per second of data at `gflops`.
    pub fn load_fraction(&self, gflops: f64) -> f64 {
        self.required_gflops / gflops
    }
}

/// Survey deployment sizing — the arithmetic behind the paper's claim
/// that Apertif's 2,000 DMs × 450 beams need only ≈ 50 HD7970 GPUs
/// (9 beams per GPU) instead of ≈ 1,800 CPUs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveySizing {
    /// The observational setup being deployed.
    pub setup: ObservationalSetup,
    /// Trial DMs to dedisperse in real time per beam.
    pub trials: usize,
    /// Simultaneous beams the telescope forms.
    pub beams: usize,
}

impl SurveySizing {
    /// The paper's Apertif deployment: 2,000 DMs over 450 beams.
    pub fn apertif_survey() -> Self {
        Self {
            setup: ObservationalSetup::apertif(),
            trials: 2_000,
            beams: 450,
        }
    }

    /// Seconds needed to dedisperse one beam-second on a device
    /// sustaining `gflops`.
    pub fn seconds_per_beam(&self, gflops: f64) -> f64 {
        RealtimeCheck::for_setup(&self.setup, self.trials).load_fraction(gflops)
    }

    /// How many beams one device can process in real time, sustaining
    /// `gflops` on this instance size.
    pub fn beams_per_device(&self, gflops: f64) -> usize {
        (1.0 / self.seconds_per_beam(gflops)).floor() as usize
    }

    /// Devices needed for the full survey at `gflops` per device.
    pub fn devices_needed(&self, gflops: f64) -> usize {
        let per_device = self.beams_per_device(gflops);
        if per_device == 0 {
            return usize::MAX; // a single beam cannot be handled live
        }
        self.beams.div_ceil(per_device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_scales_linearly_with_trials() {
        let setup = ObservationalSetup::apertif();
        let a = RealtimeCheck::for_setup(&setup, 1024);
        let b = RealtimeCheck::for_setup(&setup, 2048);
        assert!((b.required_gflops / a.required_gflops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn apertif_4096_needs_about_84_gflops() {
        let c = RealtimeCheck::for_setup(&ObservationalSetup::apertif(), 4096);
        assert!(
            (c.required_gflops - 83.9).abs() < 1.0,
            "{}",
            c.required_gflops
        );
        assert!(c.satisfied_by(100.0));
        assert!(!c.satisfied_by(50.0));
    }

    #[test]
    fn lofar_threshold_is_lower() {
        let ap = RealtimeCheck::for_setup(&ObservationalSetup::apertif(), 1024);
        let lo = RealtimeCheck::for_setup(&ObservationalSetup::lofar(), 1024);
        assert!(lo.required_gflops < ap.required_gflops);
        // LOFAR: 1024 × 6.4 MFLOP = 6.55 GFLOP/s.
        assert!((lo.required_gflops - 6.55).abs() < 0.01);
    }

    #[test]
    fn load_fraction() {
        let c = RealtimeCheck::for_setup(&ObservationalSetup::apertif(), 2000);
        // 2,000 × 20.48 MFLOP = 40.96 GFLOP per second of data.
        assert!((c.required_gflops - 40.96).abs() < 0.01);
        assert!((c.load_fraction(409.6) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn paper_sizing_reproduced() {
        // "it is possible to dedisperse 2,000 DMs in 0.106 seconds;
        // combining 9 beams per GPU ... dedispersion for Apertif could be
        // implemented today with just 50 GPUs".
        let sizing = SurveySizing::apertif_survey();
        // 0.106 s per beam-second corresponds to ≈ 386 GFLOP/s sustained.
        let hd7970_gflops = 40.96 / 0.106;
        let per_beam = sizing.seconds_per_beam(hd7970_gflops);
        assert!((per_beam - 0.106).abs() < 1e-3);
        assert_eq!(sizing.beams_per_device(hd7970_gflops), 9);
        assert_eq!(sizing.devices_needed(hd7970_gflops), 50);
    }

    #[test]
    fn underpowered_device_cannot_serve_any_beam() {
        let sizing = SurveySizing::apertif_survey();
        assert_eq!(sizing.beams_per_device(10.0), 0);
        assert_eq!(sizing.devices_needed(10.0), usize::MAX);
    }
}
