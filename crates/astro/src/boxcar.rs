//! Boxcar matched filtering for single-pulse detection.
//!
//! A top-hat pulse of width `w` is detected optimally by convolving the
//! dedispersed series with a boxcar of the same width (S/N grows as
//! `√w` for a matched width and degrades for mismatched ones). Survey
//! pipelines therefore scan a ladder of widths — usually powers of two —
//! per trial DM. This is the "further analyzed" stage the paper's
//! pipeline feeds (Section I).

use dedisp_core::OutputBuffer;
use serde::{Deserialize, Serialize};

/// The result of scanning one series with one boxcar width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxcarHit {
    /// Boxcar width in samples.
    pub width: usize,
    /// First sample of the best window.
    pub start: usize,
    /// Significance of the best window: `(sum − w·µ) / (σ·√w)`.
    pub snr: f32,
}

/// The best hit per width for one trial's series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoxcarScan {
    /// Trial index the scan belongs to.
    pub trial: usize,
    /// Best hit per width, in the order scanned.
    pub hits: Vec<BoxcarHit>,
}

impl BoxcarScan {
    /// The most significant hit across widths.
    pub fn best(&self) -> &BoxcarHit {
        self.hits
            .iter()
            .max_by(|a, b| a.snr.total_cmp(&b.snr))
            .expect("scan always has at least one width")
    }
}

/// The conventional width ladder: powers of two up to `max_width`.
pub fn width_ladder(max_width: usize) -> Vec<usize> {
    let mut widths = Vec::new();
    let mut w = 1;
    while w <= max_width {
        widths.push(w);
        w *= 2;
    }
    widths
}

/// Scans one series with every width of the ladder.
///
/// # Panics
///
/// Panics if `widths` is empty, any width is zero, or a width exceeds
/// the series length.
pub fn scan_series(trial: usize, series: &[f32], widths: &[usize]) -> BoxcarScan {
    assert!(!widths.is_empty(), "need at least one width");
    let n = series.len();
    let mean = series.iter().map(|&v| f64::from(v)).sum::<f64>() / n as f64;
    let var = series
        .iter()
        .map(|&v| (f64::from(v) - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    let sigma = var.sqrt().max(f64::MIN_POSITIVE);

    // One prefix-sum pass serves every width.
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0f64);
    let mut acc = 0.0f64;
    for &v in series {
        acc += f64::from(v);
        prefix.push(acc);
    }

    let hits = widths
        .iter()
        .map(|&w| {
            assert!(w > 0 && w <= n, "width {w} invalid for {n} samples");
            let mut best = (0usize, f64::MIN);
            for start in 0..=(n - w) {
                let sum = prefix[start + w] - prefix[start];
                if sum > best.1 {
                    best = (start, sum);
                }
            }
            let (start, sum) = best;
            let snr = (sum - w as f64 * mean) / (sigma * (w as f64).sqrt());
            BoxcarHit {
                width: w,
                start,
                snr: snr as f32,
            }
        })
        .collect();
    BoxcarScan { trial, hits }
}

/// Scans every trial of a dedispersed output; returns one scan per trial.
pub fn scan_output(output: &OutputBuffer, widths: &[usize]) -> Vec<BoxcarScan> {
    (0..output.trials())
        .map(|t| scan_series(t, output.series(t), widths))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{PulseSpec, SignalGenerator};
    use dedisp_core::prelude::*;

    #[test]
    fn ladder_is_powers_of_two() {
        assert_eq!(width_ladder(1), vec![1]);
        assert_eq!(width_ladder(16), vec![1, 2, 4, 8, 16]);
        assert_eq!(width_ladder(20), vec![1, 2, 4, 8, 16]);
    }

    #[test]
    fn matched_width_wins() {
        // A 8-sample top-hat in unit noise: the 8-wide boxcar must give
        // the highest significance among the ladder.
        let mut series = vec![0.0f32; 512];
        // Deterministic "noise": alternate small values so sigma > 0.
        for (i, v) in series.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 0.4 } else { -0.4 };
        }
        for v in &mut series[100..108] {
            *v += 3.0;
        }
        let scan = scan_series(0, &series, &width_ladder(64));
        let best = scan.best();
        assert_eq!(best.width, 8, "best width {}", best.width);
        assert!(
            best.start >= 98 && best.start <= 102,
            "start {}",
            best.start
        );
        // Wider-than-pulse boxcars dilute the significance.
        let w64 = scan.hits.iter().find(|h| h.width == 64).unwrap();
        assert!(w64.snr < best.snr);
    }

    #[test]
    fn snr_grows_like_sqrt_width_for_wide_pulses() {
        let mut series = vec![0.0f32; 1024];
        for (i, v) in series.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 0.5 } else { -0.5 };
        }
        for v in &mut series[200..232] {
            *v += 1.0; // 32-sample pulse, amplitude = 2 sigma-ish
        }
        let scan = scan_series(0, &series, &[1, 32]);
        let narrow = scan.hits[0].snr;
        let wide = scan.hits[1].snr;
        // Matched 32-wide filter gains roughly sqrt(32) ≈ 5.7x over a
        // single-sample filter (the pulse amplitude is per-sample).
        assert!(wide > 3.0 * narrow, "narrow {narrow}, wide {wide}");
    }

    #[test]
    fn end_to_end_wide_pulse_detection() {
        let plan = DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::new(0.0, 1.0, 8).unwrap())
            .sample_rate(500)
            .build()
            .unwrap();
        let pulse = PulseSpec {
            dm: 3.0,
            sample: 150,
            amplitude: 0.8, // weak per-sample, strong integrated
            width: 16,
        };
        let input = SignalGenerator::new(2)
            .noise_sigma(1.0)
            .pulse(pulse)
            .generate(&plan);
        let out = dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        let scans = scan_output(&out, &width_ladder(64));
        let best = scans
            .iter()
            .max_by(|a, b| a.best().snr.total_cmp(&b.best().snr))
            .unwrap();
        assert_eq!(best.trial, 3, "pulse at DM 3.0 = trial 3");
        let hit = best.best();
        assert!(hit.width >= 8 && hit.width <= 32, "width {}", hit.width);
        assert!(hit.start >= 140 && hit.start <= 160, "start {}", hit.start);
        assert!(hit.snr > 10.0, "snr {}", hit.snr);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn oversized_width_panics() {
        let _ = scan_series(0, &[0.0; 4], &[8]);
    }
}
