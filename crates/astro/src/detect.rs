//! Detection statistics over dedispersed time-series.
//!
//! After brute-force dedispersion, each trial's time-series is scanned
//! for impulsive events. When the trial DM is only slightly off the true
//! DM, the pulse smears and its significance drops below the noise floor
//! (the reason the DM space cannot be pruned — paper, Section II), so the
//! per-trial significance peaks sharply at the true DM.

use dedisp_core::OutputBuffer;
use serde::{Deserialize, Serialize};

/// Detection statistics for one trial's dedispersed series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialStat {
    /// Trial index.
    pub trial: usize,
    /// Mean of the series.
    pub mean: f32,
    /// Standard deviation of the series.
    pub sigma: f32,
    /// Index of the strongest sample.
    pub peak_sample: usize,
    /// Value of the strongest sample.
    pub peak_value: f32,
    /// Significance of the strongest sample: `(peak − mean) / σ`.
    pub snr: f32,
}

/// The outcome of scanning all trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Per-trial statistics, indexed by trial.
    pub trials: Vec<TrialStat>,
    /// Index of the trial with the highest S/N.
    pub best_trial: usize,
}

impl Detection {
    /// The statistics of the best trial.
    pub fn best(&self) -> &TrialStat {
        &self.trials[self.best_trial]
    }
}

/// Computes detection statistics for one series.
pub fn trial_stat(trial: usize, series: &[f32]) -> TrialStat {
    assert!(!series.is_empty(), "series must be non-empty");
    let n = series.len() as f64;
    let mean = series.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = series
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    let sigma = var.sqrt();
    let (peak_sample, &peak_value) = series
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty series");
    let snr = if sigma > 0.0 {
        ((peak_value as f64 - mean) / sigma) as f32
    } else {
        0.0
    };
    TrialStat {
        trial,
        mean: mean as f32,
        sigma: sigma as f32,
        peak_sample,
        peak_value,
        snr,
    }
}

/// Scans every trial of a dedispersed output and returns the per-trial
/// statistics plus the most significant trial.
///
/// # Panics
///
/// Panics if the output has no trials or zero-length series.
pub fn detect_best_trial(output: &OutputBuffer) -> Detection {
    assert!(output.trials() > 0, "output must contain trials");
    let trials: Vec<TrialStat> = (0..output.trials())
        .map(|t| trial_stat(t, output.series(t)))
        .collect();
    let best_trial = trials
        .iter()
        .max_by(|a, b| a.snr.total_cmp(&b.snr))
        .expect("non-empty")
        .trial;
    Detection { trials, best_trial }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{PulseSpec, SignalGenerator};
    use dedisp_core::prelude::*;

    #[test]
    fn stat_of_flat_series_has_zero_snr() {
        let s = trial_stat(0, &[2.0; 64]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.sigma, 0.0);
        assert_eq!(s.snr, 0.0);
    }

    #[test]
    fn stat_finds_peak() {
        let mut series = vec![0.0f32; 100];
        series[37] = 10.0;
        let s = trial_stat(3, &series);
        assert_eq!(s.trial, 3);
        assert_eq!(s.peak_sample, 37);
        assert_eq!(s.peak_value, 10.0);
        assert!(s.snr > 9.0);
    }

    #[test]
    fn pipeline_recovers_injected_dm_in_noise() {
        // Full end-to-end check: noise + dispersed pulse → dedisperse →
        // the most significant trial is the injected DM.
        let plan = DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::new(0.0, 1.0, 16).unwrap())
            .sample_rate(500)
            .build()
            .unwrap();
        let true_dm = 7.0;
        let input = SignalGenerator::new(123)
            .noise_sigma(1.0)
            .pulse(PulseSpec::impulse(true_dm, 200, 3.0))
            .generate(&plan);
        let out = dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        let det = detect_best_trial(&out);
        assert_eq!(det.best_trial, plan.dm_grid().nearest_trial(true_dm));
        assert_eq!(det.best().peak_sample, 200);
        assert!(det.best().snr > 8.0, "snr {}", det.best().snr);
    }

    #[test]
    fn smeared_trials_are_less_significant() {
        let plan = DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
            .dm_grid(DmGrid::new(0.0, 1.0, 16).unwrap())
            .sample_rate(500)
            .build()
            .unwrap();
        let input = SignalGenerator::new(5)
            .noise_sigma(1.0)
            .pulse(PulseSpec::impulse(8.0, 100, 3.0))
            .generate(&plan);
        let out = dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        let det = detect_best_trial(&out);
        let best_snr = det.best().snr;
        // Trials at least 4 steps away have visibly lower significance.
        for t in &det.trials {
            if (t.trial as i64 - det.best_trial as i64).unsigned_abs() >= 4 {
                assert!(t.snr < 0.8 * best_snr, "trial {}: snr {}", t.trial, t.snr);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_series_panics() {
        let _ = trial_stat(0, &[]);
    }
}
