//! # radioastro — observational substrate for dedispersion experiments
//!
//! The paper evaluates dedispersion under two observational setups drawn
//! from telescopes operated by ASTRON: the **Apertif** system on the
//! Westerbork telescope and **LOFAR** (Section IV). This crate provides
//! those setups as first-class values, plus everything needed to exercise
//! the dedispersion code path end-to-end without telescope hardware:
//!
//! * [`setup`] — [`ObservationalSetup`]: band, time resolution, DM grid
//!   conventions; presets [`ObservationalSetup::apertif`] and
//!   [`ObservationalSetup::lofar`]; the paper's 2–4,096 input-instance
//!   sweep.
//! * [`signal`] — synthetic channelized time-series: Gaussian noise plus
//!   dispersed pulses injected with the exact Eq. 1 delays, so that
//!   dedispersing at the injected DM re-aligns the pulse.
//! * [`detect`] — per-trial detection statistics over dedispersed output;
//!   the S/N peak must sit at the injected DM.
//! * [`dmplan`] — DDplan-style trial-grid planning from smearing
//!   analysis (sampling, intra-channel, pulse width, step).
//! * [`boxcar`] — matched-filter single-pulse search over width ladders.
//! * [`fold`](mod@fold) — epoch folding and χ² period search for pulsars.
//! * [`rfi`] — interference excision (channel masking, zero-DM clipping).
//! * [`realtime`] — the real-time constraint of Figures 6–7 and the
//!   survey sizing arithmetic of Section V-D.
//! * [`filterbank`] — a minimal channelized-data container format
//!   (header + packed samples), for moving synthetic observations around.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boxcar;
pub mod detect;
pub mod dmplan;
pub mod filterbank;
pub mod fold;
pub mod realtime;
pub mod rfi;
pub mod setup;
pub mod signal;

pub use boxcar::{scan_output, scan_series, width_ladder, BoxcarHit, BoxcarScan};
pub use detect::{detect_best_trial, Detection, TrialStat};
pub use dmplan::{DmPlan, DmPlanner, DmSegment};
pub use filterbank::Filterbank;
pub use fold::{fold, search_periods, FoldedProfile, PeriodSearch};
pub use realtime::{RealtimeCheck, SurveySizing};
pub use rfi::{clip_samples, mask_channels, ExcisionReport};
pub use setup::{ObservationalSetup, PAPER_INSTANCES};
pub use signal::{PulseSpec, SignalGenerator};
