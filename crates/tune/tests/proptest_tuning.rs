//! Property-based tests of the tuner: optimality, statistics, and
//! fixed-configuration invariants over arbitrary (device, workload)
//! pairs.

use autotune::{best_fixed_config, ConfigSpace, OptimizationStats, SimExecutor, Tuner};
use dedisp_core::{DmGrid, FrequencyBand};
use manycore_sim::{all_devices, CostModel, Workload};
use proptest::prelude::*;

fn workload(channels: usize, rate: u32, trials: usize) -> Workload {
    Workload::analytic(
        "prop",
        &FrequencyBand::new(200.0, 0.5, channels).expect("valid band"),
        &DmGrid::paper_grid(trials).expect("valid grid"),
        rate,
    )
    .expect("valid workload")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn optimum_dominates_space(
        dev_idx in 0usize..5,
        channels in 8usize..128,
        trials in prop::sample::select(vec![2usize, 16, 128, 1024]),
    ) {
        let model = CostModel::new(all_devices().swap_remove(dev_idx));
        let w = workload(channels, 5_000, trials);
        let space = ConfigSpace::reduced();
        let r = Tuner.tune(&SimExecutor::new(&model, &w, &space));
        let best = r.best_gflops();
        prop_assert!(r.samples.iter().all(|s| s.gflops <= best));
        // The optimum never violates the tile-fits-problem constraint.
        prop_assert!(r.best_config().tile_dm() as usize <= trials);
    }

    #[test]
    fn stats_match_manual_computation(
        scores in prop::collection::vec(0.1f64..500.0, 2..200),
    ) {
        let s = OptimizationStats::from_samples(scores.iter().copied());
        let n = scores.len() as f64;
        let mean = scores.iter().sum::<f64>() / n;
        let var = scores.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((s.mean - mean).abs() < 1e-9);
        prop_assert!((s.std - var.sqrt()).abs() < 1e-9);
        prop_assert!(s.max >= s.mean && s.mean >= s.min);
        prop_assert!(s.snr_of_max() >= 0.0);
        // Chebyshev bound is a probability.
        let p = s.guess_probability_bound();
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn fixed_config_never_beats_tuned(
        dev_idx in 0usize..5,
        trials_pair in prop::sample::select(vec![(2usize, 64usize), (4, 256), (16, 1024)]),
    ) {
        let model = CostModel::new(all_devices().swap_remove(dev_idx));
        let space = ConfigSpace::reduced();
        let sweep: Vec<_> = [trials_pair.0, trials_pair.1]
            .iter()
            .map(|&t| {
                let w = workload(32, 5_000, t);
                Tuner.tune(&SimExecutor::new(&model, &w, &space))
            })
            .collect();
        let cmp = best_fixed_config(&sweep);
        for sp in cmp.speedups() {
            prop_assert!(sp >= 1.0 - 1e-12, "speedup {sp}");
        }
        // The fixed configuration is valid on the small instance.
        prop_assert!(cmp.fixed_config.tile_dm() as usize <= trials_pair.0);
    }

    #[test]
    fn meaningful_space_respects_all_constraints(
        dev_idx in 0usize..5,
        trials in prop::sample::select(vec![2usize, 32, 512]),
    ) {
        let dev = all_devices().swap_remove(dev_idx);
        let w = workload(64, 5_000, trials);
        let space = ConfigSpace::paper();
        for c in space.meaningful(&dev, &w) {
            prop_assert!(manycore_sim::check_config(&dev, &w, &c).is_ok());
            prop_assert!(c.work_items() <= dev.max_wg_size);
            prop_assert!(c.tile_dm() as usize <= trials);
        }
    }
}
