//! The best *fixed* configuration baseline (paper, Section V-D).
//!
//! The paper compares its per-instance tuned optima against "the best
//! possible manually optimized version": the single configuration that,
//! working on **all** input instances of a (device, setup) pair,
//! maximizes the sum of achieved GFLOP/s — itself found by exhaustive
//! search. Figures 13 and 14 plot the tuned-over-fixed speedup.

use dedisp_core::KernelConfig;
use serde::{Deserialize, Serialize};

use crate::tuner::TuningResult;

/// The fixed-configuration comparison for one (device, setup) sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedComparison {
    /// The best fixed configuration across all instances.
    pub fixed_config: KernelConfig,
    /// Per-instance GFLOP/s of the fixed configuration.
    pub fixed_gflops: Vec<f64>,
    /// Per-instance GFLOP/s of the tuned optimum.
    pub tuned_gflops: Vec<f64>,
}

impl FixedComparison {
    /// Per-instance speedup of the tuned optimum over the fixed
    /// configuration (the series of Figures 13–14).
    pub fn speedups(&self) -> Vec<f64> {
        self.fixed_gflops
            .iter()
            .zip(&self.tuned_gflops)
            .map(|(f, t)| t / f)
            .collect()
    }

    /// Mean speedup across instances.
    pub fn mean_speedup(&self) -> f64 {
        let s = self.speedups();
        s.iter().sum::<f64>() / s.len() as f64
    }
}

/// Finds the best fixed configuration over a sweep of tuning results
/// (one per input instance) and compares it with the per-instance
/// optima.
///
/// A configuration qualifies only if it was meaningful (hence scored) on
/// *every* instance — exactly the paper's "working on all input
/// instances".
///
/// # Panics
///
/// Panics if the sweep is empty or no configuration spans all instances
/// (with instance sizes down to 2 trials, single-DM-tile configurations
/// always qualify, so this cannot happen with a sane space).
pub fn best_fixed_config(sweep: &[TuningResult]) -> FixedComparison {
    assert!(!sweep.is_empty(), "empty sweep");

    // Candidate = configurations scored on the smallest space; intersect
    // with all other instances while accumulating sums.
    let mut best: Option<(KernelConfig, f64)> = None;
    'cand: for sample in &sweep[0].samples {
        let mut sum = sample.gflops;
        for result in &sweep[1..] {
            match result.gflops_of(&sample.config) {
                Some(g) => sum += g,
                None => continue 'cand,
            }
        }
        if best.is_none_or(|(_, s)| sum > s) {
            best = Some((sample.config, sum));
        }
    }
    let (fixed_config, _) = best.expect("no configuration spans all instances");

    let fixed_gflops = sweep
        .iter()
        .map(|r| {
            r.gflops_of(&fixed_config)
                .expect("fixed config spans all instances")
        })
        .collect();
    let tuned_gflops = sweep.iter().map(TuningResult::best_gflops).collect();

    FixedComparison {
        fixed_config,
        fixed_gflops,
        tuned_gflops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ConfigSpace;
    use crate::tuner::{SimExecutor, Tuner};
    use dedisp_core::{DmGrid, FrequencyBand};
    use manycore_sim::{amd_hd7970, CostModel, Workload};

    fn sweep(trial_counts: &[usize]) -> Vec<TuningResult> {
        let space = ConfigSpace::reduced();
        let model = CostModel::new(amd_hd7970());
        trial_counts
            .iter()
            .map(|&t| {
                let w = Workload::analytic(
                    "Apertif",
                    &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
                    &DmGrid::paper_grid(t).unwrap(),
                    20_000,
                )
                .unwrap();
                Tuner.tune(&SimExecutor::new(&model, &w, &space))
            })
            .collect()
    }

    #[test]
    fn tuned_never_loses_to_fixed() {
        let s = sweep(&[2, 16, 128, 1024]);
        let cmp = best_fixed_config(&s);
        for (i, sp) in cmp.speedups().iter().enumerate() {
            assert!(*sp >= 1.0 - 1e-12, "instance {i}: speedup {sp}");
        }
        assert!(cmp.mean_speedup() >= 1.0);
    }

    #[test]
    fn fixed_config_spans_all_instances() {
        let s = sweep(&[2, 16, 128]);
        let cmp = best_fixed_config(&s);
        // Valid on the 2-trial instance ⇒ tile_dm ≤ 2.
        assert!(cmp.fixed_config.tile_dm() <= 2);
        assert_eq!(cmp.fixed_gflops.len(), 3);
        assert_eq!(cmp.tuned_gflops.len(), 3);
    }

    #[test]
    fn small_instance_constraint_costs_large_instances() {
        // Because the fixed configuration must work at 2 trials, it
        // cannot tile many DMs — so the tuned version wins clearly on
        // the large Apertif instances (the paper's ≈3x on GPUs).
        let s = sweep(&[2, 1024]);
        let cmp = best_fixed_config(&s);
        let speedups = cmp.speedups();
        assert!(
            speedups[1] > 1.5,
            "expected a clear win at 1024 trials, got {}",
            speedups[1]
        );
    }

    #[test]
    fn single_instance_sweep_fixed_equals_tuned() {
        let s = sweep(&[256]);
        let cmp = best_fixed_config(&s);
        assert!((cmp.speedups()[0] - 1.0).abs() < 1e-12);
        assert_eq!(cmp.fixed_config, s[0].best_config());
    }
}
