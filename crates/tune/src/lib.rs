//! # autotune — exhaustive configuration tuning with optimum statistics
//!
//! The paper's thesis is that no a-priori knowledge can select the
//! optimal (work-items, registers) configuration of the dedispersion
//! kernel — it depends on the platform, the telescope, and even the
//! number of trial DMs — and that exhaustive auto-tuning is "the only
//! feasible way to properly configure the dedispersion algorithm"
//! (Section V-A). This crate is that tuner:
//!
//! * [`space`] — enumeration of candidate configurations (the paper's
//!   "every meaningful combination of the four parameters").
//! * [`tuner`] — the exhaustive search over any [`Executor`]: the
//!   analytic device model of `manycore-sim`, or a measured host kernel.
//! * [`stats`] — the statistics the paper uses to quantify tuning impact:
//!   the signal-to-noise ratio of the optimum (Figures 8–9), Chebyshev
//!   bounds on the probability of guessing a near-optimal configuration,
//!   and performance histograms (Figure 10).
//! * [`fixed`] — the best *fixed* configuration baseline of Figures
//!   13–14: the single configuration that, working on all input
//!   instances, maximizes the summed GFLOP/s.
//! * [`host`] — an executor that scores configurations by *measured*
//!   wall-clock on this machine's real kernels.
//! * [`db`] — the persistent per-(platform, setup, instance) optimum
//!   store that the paper's first experiment produces.
//! * [`report`] — serializable result tables for the figure harnesses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod db;
pub mod fixed;
pub mod host;
pub mod report;
pub mod space;
pub mod stats;
pub mod tuner;

pub use db::{TunedEntry, TuningDatabase};
pub use fixed::{best_fixed_config, FixedComparison};
pub use host::{HostExecutor, HostKernel};
pub use report::{InstanceResult, SweepReport};
pub use space::ConfigSpace;
pub use stats::{chebyshev_upper_bound, OptimizationStats};
pub use tuner::{Executor, SimExecutor, Tuner, TuningResult};
