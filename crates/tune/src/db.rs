//! Persistent tuning results.
//!
//! The output of the paper's first experiment is "a set of tuples
//! representing the optimal configuration of the algorithm's parameters;
//! there is a tuple for every combination of platform, observational
//! setup and input instance" (Section IV-A). Production pipelines ship
//! exactly such files. [`TuningDatabase`] is that artifact: store tuned
//! optima, serialize to JSON, and look configurations up — falling back
//! to the nearest smaller instance when the exact one was never tuned
//! (configurations stay valid when the problem grows, not when it
//! shrinks).

use std::collections::BTreeMap;

use dedisp_core::KernelConfig;
use serde::{Deserialize, Serialize};

/// One stored optimum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TunedEntry {
    /// The optimal configuration.
    pub config: KernelConfig,
    /// Its score when tuned, GFLOP/s.
    pub gflops: f64,
}

/// Key: platform and setup names (instance count is the inner map key).
fn key(platform: &str, setup: &str) -> String {
    format!("{platform}\u{1f}{setup}")
}

/// A persistent store of tuned optima.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TuningDatabase {
    // platform␟setup → trials → entry. BTreeMaps keep serialization
    // stable and make nearest-instance lookups ordered.
    entries: BTreeMap<String, BTreeMap<usize, TunedEntry>>,
}

impl TuningDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an optimum for `(platform, setup, trials)`.
    pub fn insert(
        &mut self,
        platform: &str,
        setup: &str,
        trials: usize,
        config: KernelConfig,
        gflops: f64,
    ) {
        self.entries
            .entry(key(platform, setup))
            .or_default()
            .insert(trials, TunedEntry { config, gflops });
    }

    /// Exact lookup.
    pub fn get(&self, platform: &str, setup: &str, trials: usize) -> Option<TunedEntry> {
        self.entries
            .get(&key(platform, setup))
            .and_then(|m| m.get(&trials))
            .copied()
    }

    /// Lookup with fallback: the entry for the largest tuned instance
    /// not exceeding `trials` (whose tile necessarily fits the larger
    /// problem). Returns the instance actually matched.
    pub fn get_nearest(
        &self,
        platform: &str,
        setup: &str,
        trials: usize,
    ) -> Option<(usize, TunedEntry)> {
        self.entries.get(&key(platform, setup)).and_then(|m| {
            m.range(..=trials)
                .next_back()
                .map(|(&t, &entry)| (t, entry))
        })
    }

    /// Total lookup: like [`TuningDatabase::get_nearest`], but when no
    /// tuned instance is small enough it falls back *upward* to the
    /// smallest tuned instance above `trials` (its configuration may
    /// over-tile the smaller problem, but remains a sane starting point
    /// and its throughput a usable estimate). Returns `None` only when
    /// `(platform, setup)` has no entries at all, which makes fleet
    /// lookups total for any platform that has been tuned at least once.
    pub fn resolve(
        &self,
        platform: &str,
        setup: &str,
        trials: usize,
    ) -> Option<(usize, TunedEntry)> {
        let m = self.entries.get(&key(platform, setup))?;
        m.range(..=trials)
            .next_back()
            .or_else(|| m.range(trials..).next())
            .map(|(&t, &entry)| (t, entry))
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.values().map(BTreeMap::len).sum()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Panics only if serde_json fails on a plain map, which cannot
    /// happen for this type.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain maps always serialize")
    }

    /// Deserializes from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Iterates `(platform, setup, trials, entry)` over everything
    /// stored, in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, usize, TunedEntry)> + '_ {
        self.entries.iter().flat_map(|(k, m)| {
            let (platform, setup) = k.split_once('\u{1f}').expect("keys are two-part");
            m.iter()
                .map(move |(&trials, &entry)| (platform, setup, trials, entry))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(wt: u32, wd: u32) -> KernelConfig {
        KernelConfig::new(wt, wd, 1, 1).unwrap()
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut db = TuningDatabase::new();
        assert!(db.is_empty());
        db.insert("AMD HD7970", "Apertif", 1024, cfg(64, 4), 342.0);
        db.insert("AMD HD7970", "LOFAR", 1024, cfg(100, 2), 109.0);
        db.insert("NVIDIA K20", "Apertif", 1024, cfg(32, 1), 163.0);
        assert_eq!(db.len(), 3);
        let e = db.get("AMD HD7970", "Apertif", 1024).unwrap();
        assert_eq!(e.config, cfg(64, 4));
        assert_eq!(e.gflops, 342.0);
        assert!(db.get("AMD HD7970", "Apertif", 2048).is_none());
        assert!(db.get("Intel Xeon Phi 5110P", "Apertif", 1024).is_none());
    }

    #[test]
    fn nearest_falls_back_downward_only() {
        let mut db = TuningDatabase::new();
        db.insert("dev", "setup", 64, cfg(8, 2), 10.0);
        db.insert("dev", "setup", 1024, cfg(64, 4), 40.0);
        // Exact.
        assert_eq!(db.get_nearest("dev", "setup", 1024).unwrap().0, 1024);
        // Between: picks the largest not exceeding.
        assert_eq!(db.get_nearest("dev", "setup", 512).unwrap().0, 64);
        // Above everything: picks the largest stored.
        assert_eq!(db.get_nearest("dev", "setup", 4096).unwrap().0, 1024);
        // Below everything: nothing fits.
        assert!(db.get_nearest("dev", "setup", 32).is_none());
    }

    #[test]
    fn resolve_is_total_once_any_instance_is_tuned() {
        let mut db = TuningDatabase::new();
        db.insert("dev", "setup", 64, cfg(8, 2), 10.0);
        db.insert("dev", "setup", 1024, cfg(64, 4), 40.0);
        // Exact and downward matches agree with get_nearest.
        assert_eq!(db.resolve("dev", "setup", 1024).unwrap().0, 1024);
        assert_eq!(db.resolve("dev", "setup", 512).unwrap().0, 64);
        assert_eq!(db.resolve("dev", "setup", 4096).unwrap().0, 1024);
        // Below everything: falls back upward instead of failing.
        assert_eq!(db.resolve("dev", "setup", 32).unwrap().0, 64);
        assert_eq!(db.resolve("dev", "setup", 1).unwrap().0, 64);
        // Unknown pair: still None.
        assert!(db.resolve("dev", "other", 64).is_none());
        assert!(db.resolve("other", "setup", 64).is_none());
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let mut db = TuningDatabase::new();
        db.insert("A", "Apertif", 2, cfg(2, 1), 1.5);
        db.insert("A", "Apertif", 4096, cfg(256, 1), 300.25);
        db.insert("B", "LOFAR", 16, cfg(25, 2), 77.0);
        let back = TuningDatabase::from_json(&db.to_json()).unwrap();
        assert_eq!(back.len(), db.len());
        for (p, s, t, e) in db.iter() {
            let b = back.get(p, s, t).unwrap();
            assert_eq!(b.config, e.config);
            assert!((b.gflops - e.gflops).abs() < 1e-9);
        }
    }

    #[test]
    fn iter_is_deterministic_and_complete() {
        let mut db = TuningDatabase::new();
        db.insert("B", "LOFAR", 16, cfg(25, 2), 1.0);
        db.insert("A", "Apertif", 2, cfg(2, 1), 2.0);
        db.insert("A", "Apertif", 64, cfg(8, 4), 3.0);
        let items: Vec<_> = db
            .iter()
            .map(|(p, s, t, _)| (p.to_string(), s.to_string(), t))
            .collect();
        assert_eq!(
            items,
            vec![
                ("A".to_string(), "Apertif".to_string(), 2),
                ("A".to_string(), "Apertif".to_string(), 64),
                ("B".to_string(), "LOFAR".to_string(), 16),
            ]
        );
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(TuningDatabase::from_json("{not json").is_err());
    }
}
