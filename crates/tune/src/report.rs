//! Serializable sweep reports for the figure harnesses.
//!
//! Every figure in the paper's evaluation is a family of series indexed
//! by device over the 12 input instances. [`SweepReport`] is that table:
//! one [`InstanceResult`] per (device, instance), JSON-serializable so
//! the harness binaries can persist and diff results.

use dedisp_core::KernelConfig;
use serde::{Deserialize, Serialize};

use crate::stats::OptimizationStats;
use crate::tuner::TuningResult;

/// The tuned outcome for one (device, setup, instance) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceResult {
    /// Number of trial DMs of this instance.
    pub trials: usize,
    /// The tuned optimal configuration.
    pub best_config: KernelConfig,
    /// The optimum's GFLOP/s.
    pub best_gflops: f64,
    /// Work-items per work-group of the optimum (Figures 2–3).
    pub work_items: u32,
    /// Registers per work-item of the optimum (Figures 4–5).
    pub registers: u32,
    /// Population statistics of the optimization space (Figures 8–10).
    pub stats: OptimizationStats,
    /// Configurations in the space.
    pub space_size: usize,
}

impl InstanceResult {
    /// Summarizes one tuning result.
    pub fn from_tuning(trials: usize, result: &TuningResult) -> Self {
        let best = result.best_config();
        Self {
            trials,
            best_config: best,
            best_gflops: result.best_gflops(),
            work_items: best.work_items(),
            registers: best.registers_per_item(),
            stats: result.stats(),
            space_size: result.samples.len(),
        }
    }

    /// SNR of the optimum for this instance (Figures 8–9).
    pub fn snr(&self) -> f64 {
        self.stats.snr_of_max()
    }
}

/// A full sweep: one device and setup over many input instances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Device name.
    pub device: String,
    /// Setup name ("Apertif", "LOFAR", possibly "-0dm" suffixed).
    pub setup: String,
    /// Per-instance results, ordered by instance size.
    pub instances: Vec<InstanceResult>,
}

impl SweepReport {
    /// The `(trials, value)` series for one figure metric.
    pub fn series(&self, metric: impl Fn(&InstanceResult) -> f64) -> Vec<(usize, f64)> {
        self.instances
            .iter()
            .map(|r| (r.trials, metric(r)))
            .collect()
    }

    /// Mean best GFLOP/s over instances (used for cross-device ratios).
    pub fn mean_best_gflops(&self) -> f64 {
        let s: f64 = self.instances.iter().map(|r| r.best_gflops).sum();
        s / self.instances.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::ConfigSpace;
    use crate::tuner::{SimExecutor, Tuner};
    use dedisp_core::{DmGrid, FrequencyBand};
    use manycore_sim::{amd_hd7970, CostModel, Workload};

    fn report() -> SweepReport {
        let space = ConfigSpace::reduced();
        let model = CostModel::new(amd_hd7970());
        let instances = [8usize, 64, 512]
            .iter()
            .map(|&t| {
                let w = Workload::analytic(
                    "Apertif",
                    &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
                    &DmGrid::paper_grid(t).unwrap(),
                    20_000,
                )
                .unwrap();
                let r = Tuner.tune(&SimExecutor::new(&model, &w, &space));
                InstanceResult::from_tuning(t, &r)
            })
            .collect();
        SweepReport {
            device: "AMD HD7970".into(),
            setup: "Apertif".into(),
            instances,
        }
    }

    #[test]
    fn instance_result_summaries_match() {
        let rep = report();
        for r in &rep.instances {
            assert_eq!(r.work_items, r.best_config.work_items());
            assert_eq!(r.registers, r.best_config.registers_per_item());
            assert!(r.best_gflops > 0.0);
            assert!(r.space_size > 0);
            assert!(r.snr() >= 0.0);
        }
    }

    #[test]
    fn series_extraction() {
        let rep = report();
        let perf = rep.series(|r| r.best_gflops);
        assert_eq!(perf.len(), 3);
        assert_eq!(perf[0].0, 8);
        assert_eq!(perf[2].0, 512);
        assert!(rep.mean_best_gflops() > 0.0);
    }

    #[test]
    fn json_roundtrip() {
        // serde_json's default float parsing is shortest-repr, not
        // bit-exact, so compare structure and values with a tolerance.
        let rep = report();
        let json = serde_json::to_string(&rep).unwrap();
        let back: SweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.device, rep.device);
        assert_eq!(back.setup, rep.setup);
        assert_eq!(back.instances.len(), rep.instances.len());
        for (a, b) in back.instances.iter().zip(&rep.instances) {
            assert_eq!(a.trials, b.trials);
            assert_eq!(a.best_config, b.best_config);
            assert_eq!(a.space_size, b.space_size);
            assert!((a.best_gflops - b.best_gflops).abs() < 1e-9);
            assert!((a.stats.mean - b.stats.mean).abs() < 1e-9);
        }
    }
}
