//! Tuning real host kernels by measurement.
//!
//! The tuner is executor-generic (see [`crate::tuner::Executor`]); this
//! module provides the executor that *actually runs* a dedispersion
//! kernel on this machine and scores it by measured wall-clock time —
//! the exact loop the paper runs on its accelerators (averaging over
//! repeated executions, Section IV). Useful to tune the rayon host
//! kernel for the local CPU, and as the template for wiring a real
//! OpenCL/CUDA device underneath the same tuner.

use std::time::Instant;

use dedisp_core::{
    Dedisperser, DedispersionPlan, InputBuffer, KernelConfig, OutputBuffer, ParallelKernel,
    TiledKernel,
};
use parking_lot::Mutex;

use crate::space::ConfigSpace;
use crate::tuner::Executor;

/// Which host kernel the executor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostKernel {
    /// Single-threaded tiled kernel.
    Tiled,
    /// Rayon-parallel tiled kernel.
    Parallel,
}

/// An [`Executor`] that measures real executions on the host CPU.
pub struct HostExecutor<'a> {
    plan: &'a DedispersionPlan,
    input: &'a InputBuffer,
    kind: HostKernel,
    repeats: u32,
    configs: Vec<KernelConfig>,
    scratch: Mutex<OutputBuffer>,
}

impl<'a> HostExecutor<'a> {
    /// Creates an executor over the configurations of `space` that fit
    /// `plan`. Each measurement averages `repeats` executions (the paper
    /// uses ten).
    ///
    /// # Panics
    ///
    /// Panics if `repeats` is zero.
    pub fn new(
        plan: &'a DedispersionPlan,
        input: &'a InputBuffer,
        space: &ConfigSpace,
        kind: HostKernel,
        repeats: u32,
    ) -> Self {
        assert!(repeats > 0, "need at least one repetition");
        let configs = space
            .raw_configs()
            .into_iter()
            .filter(|c| c.validate_for(plan.out_samples(), plan.trials()).is_ok())
            .collect();
        Self {
            plan,
            input,
            kind,
            repeats,
            configs,
            scratch: Mutex::new(OutputBuffer::for_plan(plan)),
        }
    }
}

impl Executor for HostExecutor<'_> {
    fn label(&self) -> String {
        format!(
            "host-{} / {} trials",
            match self.kind {
                HostKernel::Tiled => "tiled",
                HostKernel::Parallel => "parallel",
            },
            self.plan.trials()
        )
    }

    fn configs(&self) -> Vec<KernelConfig> {
        self.configs.clone()
    }

    fn measure(&self, config: &KernelConfig) -> Option<f64> {
        let kernel: Box<dyn Dedisperser> = match self.kind {
            HostKernel::Tiled => Box::new(TiledKernel::new(*config)),
            HostKernel::Parallel => Box::new(ParallelKernel::new(*config)),
        };
        // The parallel kernel already saturates the machine: serialize
        // measurements through one scratch buffer so timings are honest.
        let mut output = self.scratch.lock();
        // Warm-up execution (page faults, thread pool spin-up).
        kernel.dedisperse(self.plan, self.input, &mut output).ok()?;
        let start = Instant::now();
        for _ in 0..self.repeats {
            kernel.dedisperse(self.plan, self.input, &mut output).ok()?;
        }
        let mean_s = start.elapsed().as_secs_f64() / f64::from(self.repeats);
        Some(self.plan.flop() as f64 / mean_s / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuner::Tuner;
    use dedisp_core::{DmGrid, FrequencyBand, NaiveKernel};

    fn plan() -> DedispersionPlan {
        DedispersionPlan::builder()
            .band(FrequencyBand::new(140.0, 0.5, 16).unwrap())
            .dm_grid(DmGrid::new(0.0, 1.0, 8).unwrap())
            .sample_rate(400)
            .build()
            .unwrap()
    }

    fn input(plan: &DedispersionPlan) -> InputBuffer {
        let mut buf = InputBuffer::for_plan(plan);
        for (i, v) in buf.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 17) as f32 * 0.25;
        }
        buf
    }

    #[test]
    fn tunes_a_real_kernel() {
        let plan = plan();
        let input = input(&plan);
        let space = ConfigSpace::reduced();
        let exec = HostExecutor::new(&plan, &input, &space, HostKernel::Tiled, 2);
        let result = Tuner.tune(&exec);
        assert!(result.best_gflops() > 0.0);
        assert!(result
            .best_config()
            .validate_for(plan.out_samples(), plan.trials())
            .is_ok());
        // Every scored configuration produced a positive rate.
        assert!(result.samples.iter().all(|s| s.gflops > 0.0));
    }

    #[test]
    fn tuned_config_actually_computes_the_transform() {
        let plan = plan();
        let input = input(&plan);
        let space = ConfigSpace::reduced();
        let exec = HostExecutor::new(&plan, &input, &space, HostKernel::Parallel, 1);
        let result = Tuner.tune(&exec);

        let mut out = OutputBuffer::for_plan(&plan);
        ParallelKernel::new(result.best_config())
            .dedisperse(&plan, &input, &mut out)
            .unwrap();
        let mut reference = OutputBuffer::for_plan(&plan);
        NaiveKernel
            .dedisperse(&plan, &input, &mut reference)
            .unwrap();
        assert_eq!(out.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn space_is_filtered_to_fitting_configs() {
        let plan = plan(); // 8 trials, 400 samples
        let input = input(&plan);
        let space = ConfigSpace::paper();
        let exec = HostExecutor::new(&plan, &input, &space, HostKernel::Tiled, 1);
        let configs = exec.configs();
        assert!(!configs.is_empty());
        assert!(configs.iter().all(|c| c.tile_dm() <= 8));
        assert!(configs.iter().all(|c| c.tile_time() as usize <= 400));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repeats_panics() {
        let plan = plan();
        let input = input(&plan);
        let space = ConfigSpace::reduced();
        let _ = HostExecutor::new(&plan, &input, &space, HostKernel::Tiled, 0);
    }
}
