//! Candidate configuration enumeration.
//!
//! The four parameters range over value sets chosen as the paper's do:
//! powers of two (the natural SIMD-friendly sizes) *and* multiples of
//! five (the divisors of the 20,000 and 200,000 samples/second time
//! resolutions — the paper's LOFAR optima, such as 250 × 4 work-items,
//! are of this kind). A configuration enters the search only if it is
//! *meaningful*: it satisfies every device, setup, and instance
//! constraint (Section IV-A).

use dedisp_core::KernelConfig;
use manycore_sim::{check_config, DeviceDescriptor, Workload};
use serde::{Deserialize, Serialize};

/// The candidate value sets for the four tunable parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// Candidate work-items per work-group, time dimension.
    pub wi_time: Vec<u32>,
    /// Candidate work-items per work-group, DM dimension.
    pub wi_dm: Vec<u32>,
    /// Candidate elements per work-item, time dimension.
    pub el_time: Vec<u32>,
    /// Candidate elements per work-item, DM dimension.
    pub el_dm: Vec<u32>,
}

impl ConfigSpace {
    /// The full search space used by the paper-scale experiments.
    pub fn paper() -> Self {
        let mut wi_time = vec![
            2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, // powers of two
            5, 10, 20, 25, 50, 100, 125, 200, 250, 500, 1000, // divisors of s
        ];
        wi_time.sort_unstable();
        let mut el_time = vec![1, 2, 4, 8, 16, 32, 5, 10, 20, 25];
        el_time.sort_unstable();
        Self {
            wi_time,
            wi_dm: vec![1, 2, 4, 8, 16, 32],
            el_time,
            el_dm: vec![1, 2, 4, 8, 16],
        }
    }

    /// A reduced space for unit tests and quick demos: two orders of
    /// magnitude fewer evaluations, same qualitative structure.
    pub fn reduced() -> Self {
        Self {
            wi_time: vec![4, 16, 64, 250, 256],
            wi_dm: vec![1, 2, 4],
            el_time: vec![1, 4, 8],
            el_dm: vec![1, 2, 4],
        }
    }

    /// Total raw combinations before constraint filtering.
    pub fn raw_size(&self) -> usize {
        self.wi_time.len() * self.wi_dm.len() * self.el_time.len() * self.el_dm.len()
    }

    /// Enumerates every raw combination (unfiltered).
    pub fn raw_configs(&self) -> Vec<KernelConfig> {
        let mut out = Vec::with_capacity(self.raw_size());
        for &wt in &self.wi_time {
            for &wd in &self.wi_dm {
                for &et in &self.el_time {
                    for &ed in &self.el_dm {
                        out.push(
                            KernelConfig::new(wt, wd, et, ed).expect("space values are non-zero"),
                        );
                    }
                }
            }
        }
        out
    }

    /// Enumerates the *meaningful* configurations for a (device,
    /// workload) pair — the paper's tuning population.
    pub fn meaningful(&self, device: &DeviceDescriptor, workload: &Workload) -> Vec<KernelConfig> {
        self.raw_configs()
            .into_iter()
            .filter(|c| check_config(device, workload, c).is_ok())
            .collect()
    }
}

impl Default for ConfigSpace {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisp_core::{DmGrid, FrequencyBand};
    use manycore_sim::{amd_hd7970, intel_xeon_phi_5110p, nvidia_gtx680};

    fn apertif(trials: usize) -> Workload {
        Workload::analytic(
            "Apertif",
            &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
            &DmGrid::paper_grid(trials).unwrap(),
            20_000,
        )
        .unwrap()
    }

    #[test]
    fn paper_space_has_thousands_of_candidates() {
        let s = ConfigSpace::paper();
        assert!(s.raw_size() > 5_000, "raw {}", s.raw_size());
        assert_eq!(s.raw_configs().len(), s.raw_size());
    }

    #[test]
    fn space_includes_paper_optima_shapes() {
        let s = ConfigSpace::paper();
        let configs = s.raw_configs();
        // GTX 680 Apertif: 32 × 32 work-items.
        assert!(configs.iter().any(|c| c.wi_time() == 32 && c.wi_dm() == 32));
        // GTX 680 LOFAR: 250 × 4 work-items.
        assert!(configs.iter().any(|c| c.wi_time() == 250 && c.wi_dm() == 4));
        // K20 Apertif registers: 25 × 4 elements.
        assert!(configs.iter().any(|c| c.el_time() == 25 && c.el_dm() == 4));
    }

    #[test]
    fn meaningful_respects_device_limits() {
        let s = ConfigSpace::paper();
        let w = apertif(1024);
        let hd = s.meaningful(&amd_hd7970(), &w);
        assert!(!hd.is_empty());
        assert!(hd.iter().all(|c| c.work_items() <= 256));

        let phi = s.meaningful(&intel_xeon_phi_5110p(), &w);
        assert!(phi.iter().all(|c| c.work_items() <= 64));

        let gtx = s.meaningful(&nvidia_gtx680(), &w);
        assert!(gtx.iter().any(|c| c.work_items() == 1024));
        // GK104's 63-register ceiling excludes heavy accumulator sets.
        assert!(gtx
            .iter()
            .all(|c| c.registers_per_item() + 12 + 2 * c.el_dm() <= 63));
    }

    #[test]
    fn small_instances_shrink_the_space() {
        let s = ConfigSpace::paper();
        let big = s.meaningful(&amd_hd7970(), &apertif(4096));
        let tiny = s.meaningful(&amd_hd7970(), &apertif(2));
        assert!(tiny.len() < big.len());
        assert!(tiny.iter().all(|c| c.tile_dm() <= 2));
    }

    #[test]
    fn reduced_space_is_much_smaller() {
        assert!(ConfigSpace::reduced().raw_size() * 20 < ConfigSpace::paper().raw_size());
    }
}
