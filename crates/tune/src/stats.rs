//! Optimization-space statistics (paper, Section V-B).
//!
//! The paper quantifies the impact of auto-tuning by treating the set of
//! meaningful configurations as a population and asking how exceptional
//! the optimum is: its signal-to-noise ratio (distance from the mean in
//! units of standard deviation, Figures 8–9), the Chebyshev upper bound
//! on the probability of guessing a configuration that good (< 39% in
//! the best case, < 5% in the worst), and the shape of the performance
//! histogram (Figure 10).

use serde::{Deserialize, Serialize};

/// Summary statistics of an optimization space's GFLOP/s population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizationStats {
    /// Number of configurations.
    pub count: usize,
    /// Population mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Best configuration's score.
    pub max: f64,
    /// Worst configuration's score.
    pub min: f64,
}

impl OptimizationStats {
    /// Computes statistics from a stream of scores.
    ///
    /// # Panics
    ///
    /// Panics on an empty population.
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let values: Vec<f64> = samples.into_iter().collect();
        assert!(!values.is_empty(), "empty population");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Self {
            count: values.len(),
            mean,
            std: var.sqrt(),
            max: values.iter().copied().fold(f64::MIN, f64::max),
            min: values.iter().copied().fold(f64::MAX, f64::min),
        }
    }

    /// The signal-to-noise ratio of the optimum: `(max − mean) / σ` —
    /// the quantity plotted in the paper's Figures 8 and 9.
    pub fn snr_of_max(&self) -> f64 {
        if self.std == 0.0 {
            return 0.0;
        }
        (self.max - self.mean) / self.std
    }

    /// Chebyshev upper bound on the probability that a uniformly guessed
    /// configuration performs within `k` standard deviations of the mean
    /// or better, i.e. `P(X ≥ mean + k·σ) ≤ 1/k²`.
    pub fn guess_probability_bound(&self) -> f64 {
        chebyshev_upper_bound(self.snr_of_max())
    }
}

/// Chebyshev's inequality: `P(|X − µ| ≥ k·σ) ≤ 1/k²`, clamped to 1.
pub fn chebyshev_upper_bound(k: f64) -> f64 {
    if k <= 1.0 {
        1.0
    } else {
        1.0 / (k * k)
    }
}

/// A fixed-width histogram over scores — the paper's Figure 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub start: f64,
    /// Bin width.
    pub width: f64,
    /// Configuration counts per bin.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `bins` equal-width bins spanning
    /// `[0, max]` (the paper plots from zero so the distance between the
    /// bulk and the optimum is visible).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or the population is empty.
    pub fn of_scores(scores: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "bins must be non-zero");
        assert!(!scores.is_empty(), "empty population");
        let max = scores.iter().copied().fold(f64::MIN, f64::max);
        let width = (max / bins as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; bins];
        for &s in scores {
            let mut idx = (s / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        Self {
            start: 0.0,
            width,
            counts,
        }
    }

    /// `(bin center, count)` pairs for plotting.
    pub fn bars(&self) -> Vec<(f64, usize)> {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.start + (i as f64 + 0.5) * self.width, c))
            .collect()
    }

    /// The number of configurations in the top bin — the paper observes
    /// "there is exactly one configuration that leads to the best
    /// performance".
    pub fn top_bin_count(&self) -> usize {
        *self.counts.last().expect("bins is non-zero")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_population() {
        let s = OptimizationStats::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.min, 2.0);
        assert!((s.snr_of_max() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_matches_paper_quotes() {
        // "in the best case scenario this probability is less than 39%,
        // while in the worst case it is less than 5%" — SNR ≈ 1.6 gives
        // 39%, SNR ≈ 4.5 gives 5%.
        assert!((chebyshev_upper_bound(1.6) - 0.3906).abs() < 1e-3);
        assert!((chebyshev_upper_bound(4.5) - 0.0494).abs() < 1e-3);
        assert_eq!(chebyshev_upper_bound(0.5), 1.0);
        assert_eq!(chebyshev_upper_bound(1.0), 1.0);
    }

    #[test]
    fn guess_probability_uses_snr() {
        let s = OptimizationStats::from_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.guess_probability_bound() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_population() {
        let s = OptimizationStats::from_samples([3.0, 3.0, 3.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.snr_of_max(), 0.0);
    }

    #[test]
    fn histogram_bins_and_tail() {
        let mut scores = vec![1.0f64; 95];
        scores.extend([9.9, 10.0]);
        let h = Histogram::of_scores(&scores, 10);
        assert_eq!(h.counts.len(), 10);
        assert_eq!(h.counts.iter().sum::<usize>(), 97);
        // The bulk sits in the low bins, the optimum alone at the top.
        assert_eq!(h.counts[1], 95); // 1.0 / 1.0 = bin 1
        assert_eq!(h.top_bin_count(), 2);
        let bars = h.bars();
        assert_eq!(bars.len(), 10);
        assert!((bars[0].0 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let _ = OptimizationStats::from_samples(std::iter::empty());
    }
}
