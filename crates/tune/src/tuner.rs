//! The exhaustive tuner.
//!
//! As in the paper's first experiment (Section IV-A): execute the
//! algorithm for every meaningful configuration and select the one with
//! the highest single-precision GFLOP/s. The tuner is generic over an
//! [`Executor`] so the same driver tunes the analytic device model, a
//! measured host kernel, or anything else that can score a
//! configuration.

use dedisp_core::KernelConfig;
use manycore_sim::{CostModel, Workload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::space::ConfigSpace;
use crate::stats::OptimizationStats;

/// Something that can score kernel configurations in GFLOP/s.
pub trait Executor: Sync {
    /// Label for reports (typically the device name).
    fn label(&self) -> String;

    /// The meaningful configurations to search.
    fn configs(&self) -> Vec<KernelConfig>;

    /// Scores one configuration; `None` if it fails at execution time.
    fn measure(&self, config: &KernelConfig) -> Option<f64>;
}

/// An [`Executor`] backed by the analytic device model.
pub struct SimExecutor<'a> {
    model: &'a CostModel,
    workload: &'a Workload,
    space: &'a ConfigSpace,
}

impl<'a> SimExecutor<'a> {
    /// Wraps a cost model and workload as a tunable executor.
    pub fn new(model: &'a CostModel, workload: &'a Workload, space: &'a ConfigSpace) -> Self {
        Self {
            model,
            workload,
            space,
        }
    }
}

impl Executor for SimExecutor<'_> {
    fn label(&self) -> String {
        format!("{} / {}", self.model.device().name, self.workload.name)
    }

    fn configs(&self) -> Vec<KernelConfig> {
        self.space.meaningful(self.model.device(), self.workload)
    }

    fn measure(&self, config: &KernelConfig) -> Option<f64> {
        self.model
            .evaluate(self.workload, config)
            .ok()
            .map(|e| e.gflops)
    }
}

/// One scored configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The configuration.
    pub config: KernelConfig,
    /// Its score in GFLOP/s.
    pub gflops: f64,
}

/// The outcome of tuning one executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// Executor label.
    pub label: String,
    /// Every scored configuration (the optimization space).
    pub samples: Vec<Sample>,
    /// Index of the optimum in `samples`.
    pub best_index: usize,
}

impl TuningResult {
    /// The optimal configuration.
    pub fn best_config(&self) -> KernelConfig {
        self.samples[self.best_index].config
    }

    /// The optimal score in GFLOP/s.
    pub fn best_gflops(&self) -> f64 {
        self.samples[self.best_index].gflops
    }

    /// Statistics of the whole optimization space.
    pub fn stats(&self) -> OptimizationStats {
        OptimizationStats::from_samples(self.samples.iter().map(|s| s.gflops))
    }

    /// The score of a specific configuration, if it was in the space.
    pub fn gflops_of(&self, config: &KernelConfig) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.config == *config)
            .map(|s| s.gflops)
    }
}

/// The exhaustive tuning driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tuner;

impl Tuner {
    /// Scores every configuration of `executor` (in parallel) and
    /// selects the optimum.
    ///
    /// # Panics
    ///
    /// Panics if no configuration can be measured — an empty optimization
    /// space means the (device, workload) pair is misconfigured.
    pub fn tune<E: Executor>(&self, executor: &E) -> TuningResult {
        let configs = executor.configs();
        let samples: Vec<Sample> = configs
            .par_iter()
            .filter_map(|c| {
                executor
                    .measure(c)
                    .map(|gflops| Sample { config: *c, gflops })
            })
            .collect();
        assert!(
            !samples.is_empty(),
            "empty optimization space for {}",
            executor.label()
        );
        let best_index = samples
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.gflops.total_cmp(&b.1.gflops))
            .expect("non-empty")
            .0;
        TuningResult {
            label: executor.label(),
            samples,
            best_index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisp_core::{DmGrid, FrequencyBand};
    use manycore_sim::{amd_hd7970, intel_xeon_phi_5110p, nvidia_gtx680, nvidia_k20};

    fn workload(name: &str, trials: usize) -> Workload {
        match name {
            "Apertif" => Workload::analytic(
                "Apertif",
                &FrequencyBand::from_edges(1420.0, 1720.0, 1024).unwrap(),
                &DmGrid::paper_grid(trials).unwrap(),
                20_000,
            )
            .unwrap(),
            _ => Workload::analytic(
                "LOFAR",
                &FrequencyBand::new(138.0, 6.0 / 32.0, 32).unwrap(),
                &DmGrid::paper_grid(trials).unwrap(),
                200_000,
            )
            .unwrap(),
        }
    }

    fn tune(
        dev: manycore_sim::DeviceDescriptor,
        w: &Workload,
        space: &ConfigSpace,
    ) -> TuningResult {
        let model = CostModel::new(dev);
        let exec = SimExecutor::new(&model, w, space);
        Tuner.tune(&exec)
    }

    #[test]
    fn optimum_dominates_every_sample() {
        let space = ConfigSpace::reduced();
        let w = workload("Apertif", 256);
        let r = tune(amd_hd7970(), &w, &space);
        let best = r.best_gflops();
        assert!(r.samples.iter().all(|s| s.gflops <= best));
        assert_eq!(r.gflops_of(&r.best_config()), Some(best));
    }

    #[test]
    fn tuning_is_deterministic() {
        let space = ConfigSpace::reduced();
        let w = workload("LOFAR", 64);
        let a = tune(nvidia_gtx680(), &w, &space);
        let b = tune(nvidia_gtx680(), &w, &space);
        assert_eq!(a.best_config(), b.best_config());
        assert_eq!(a.samples.len(), b.samples.len());
    }

    #[test]
    fn hd7970_optimum_respects_wg_cap() {
        let space = ConfigSpace::paper();
        let w = workload("Apertif", 1024);
        let r = tune(amd_hd7970(), &w, &space);
        // The paper: the HD7970 never exceeds its 256 work-item hardware
        // ceiling (the model's flat optimum plateau may select smaller
        // groups of equivalent occupancy; see EXPERIMENTS.md).
        assert!(r.best_config().work_items() <= 256);
    }

    #[test]
    fn apertif_optimum_exploits_dm_reuse() {
        // Tuned Apertif configurations tile multiple DMs per work-group.
        let space = ConfigSpace::paper();
        let w = workload("Apertif", 1024);
        for dev in [amd_hd7970(), nvidia_k20()] {
            let r = tune(dev, &w, &space);
            assert!(
                r.best_config().tile_dm() >= 8,
                "{}: tile_dm {}",
                r.label,
                r.best_config().tile_dm()
            );
        }
    }

    #[test]
    fn lofar_optimum_uses_smaller_dm_tiles_than_apertif() {
        // The paper's adaptation story (Section V-A): less reuse in the
        // LOFAR setup ⇒ the tuner shifts from reuse to occupancy.
        let space = ConfigSpace::paper();
        for dev in [amd_hd7970(), nvidia_k20()] {
            let ap = tune(dev.clone(), &workload("Apertif", 1024), &space);
            let lo = tune(dev, &workload("LOFAR", 1024), &space);
            assert!(
                lo.best_config().tile_dm() < ap.best_config().tile_dm(),
                "{}: LOFAR {} !< Apertif {}",
                ap.label,
                lo.best_config().tile_dm(),
                ap.best_config().tile_dm()
            );
        }
    }

    #[test]
    fn phi_prefers_small_work_groups() {
        let space = ConfigSpace::paper();
        let w = workload("Apertif", 1024);
        let r = tune(intel_xeon_phi_5110p(), &w, &space);
        assert!(
            r.best_config().work_items() <= 64,
            "Phi optimum {}",
            r.best_config().work_items()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let space = ConfigSpace::reduced();
        let w = workload("Apertif", 128);
        let r = tune(amd_hd7970(), &w, &space);
        let st = r.stats();
        assert_eq!(st.count, r.samples.len());
        assert!(st.max <= r.best_gflops() + 1e-12);
        assert!(st.mean < st.max);
        assert!(st.snr_of_max() > 0.0);
    }
}
