//! Per-beam stream feeding: raw seconds in, dedispersable chunks out.
//!
//! A telescope backend delivers each beam as a stream of one-second
//! channelized blocks (`channels × s` samples), but dedispersing a
//! second needs `s + max_delay` samples of context. [`BeamFeeder`] owns
//! one [`StreamWindow`] per beam and converts raw seconds into the
//! overlapped [`Chunk`]s the [`StreamingPipeline`](crate::pipeline::StreamingPipeline)
//! consumes — the glue
//! between an acquisition stage and the dedispersion workers.
//!
//! # Sizing an upstream capture ring
//!
//! The overlap is also the contract an acquisition stage must honor:
//! the feeder emits nothing for the first `ceil(max_delay / s)`
//! seconds (the warm-up, while the window still contains zero-filled
//! cold start), so a capture ring buffering raw seconds ahead of the
//! feeder must survive those warm-up seconds *plus* the second being
//! pushed without evicting — `1 + ceil(overlap / out_samples)` blocks
//! per beam, where `overlap = in_samples - out_samples` is the
//! `max_delay` context in samples. That constant lives in
//! [`dedisp_fleet::capture::ring::min_capacity_blocks`] (see DESIGN.md
//! §13); the tests below assert this module and the capture ring agree
//! on it, so the two layers cannot drift apart silently.

use dedisp_core::{DedispersionPlan, InputBuffer, Result, StreamWindow};

use crate::pipeline::Chunk;

/// Converts raw per-beam seconds into overlapped pipeline chunks.
pub struct BeamFeeder {
    plan: std::sync::Arc<DedispersionPlan>,
    windows: Vec<StreamWindow>,
    seconds_emitted: Vec<u64>,
}

impl BeamFeeder {
    /// Creates a feeder for `beams` independent beams of `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `beams` is zero.
    pub fn new(plan: std::sync::Arc<DedispersionPlan>, beams: usize) -> Self {
        assert!(beams > 0, "need at least one beam");
        Self {
            windows: (0..beams).map(|_| StreamWindow::for_plan(&plan)).collect(),
            seconds_emitted: vec![0; beams],
            plan,
        }
    }

    /// Number of beams.
    pub fn beams(&self) -> usize {
        self.windows.len()
    }

    /// Pushes one raw second (`fresh[ch]` of exactly `out_samples`
    /// values) for `beam` and returns the dedispersable chunk — `None`
    /// while the window is still warming up (the first
    /// `ceil(max_delay / s)` seconds, whose output would include the
    /// zero-filled cold start).
    ///
    /// # Errors
    ///
    /// Returns a shape error for wrong channel counts or block lengths.
    ///
    /// # Panics
    ///
    /// Panics if `beam` is out of range.
    pub fn push_second(&mut self, beam: usize, fresh: &[&[f32]]) -> Result<Option<Chunk>> {
        let window = &mut self.windows[beam];
        window.push_second(fresh)?;
        if !window.warmed_up() {
            return Ok(None);
        }
        // Copy the current window into a chunk-owned buffer; workers run
        // concurrently with subsequent pushes.
        let mut data = InputBuffer::for_plan(&self.plan);
        data.as_mut_slice()
            .copy_from_slice(window.window().as_slice());
        let second = self.seconds_emitted[beam];
        self.seconds_emitted[beam] += 1;
        Ok(Some(Chunk { beam, second, data }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisp_core::{DmGrid, FrequencyBand};
    use std::sync::Arc;

    fn plan() -> Arc<DedispersionPlan> {
        Arc::new(
            DedispersionPlan::builder()
                .band(FrequencyBand::new(140.0, 0.5, 8).unwrap())
                .dm_grid(DmGrid::new(0.0, 2.0, 6).unwrap())
                .sample_rate(100)
                .build()
                .unwrap(),
        )
    }

    fn second(plan: &DedispersionPlan, value: f32) -> Vec<Vec<f32>> {
        vec![vec![value; plan.out_samples()]; plan.channels()]
    }

    #[test]
    fn warms_up_then_emits_sequenced_chunks() {
        let plan = plan();
        assert!(plan.in_samples() > plan.out_samples(), "needs overlap");
        let mut feeder = BeamFeeder::new(Arc::clone(&plan), 2);
        assert_eq!(feeder.beams(), 2);

        let blocks = second(&plan, 1.0);
        let refs: Vec<&[f32]> = blocks.iter().map(Vec::as_slice).collect();

        // 100-sample seconds with a sub-second max delay: the first push
        // already warms the window up.
        let chunk = feeder.push_second(0, &refs).unwrap();
        let chunk = chunk.expect("warmed up after one second here");
        assert_eq!(chunk.beam, 0);
        assert_eq!(chunk.second, 0);
        assert_eq!(chunk.data.channels(), plan.channels());
        assert_eq!(chunk.data.samples(), plan.in_samples());

        let chunk = feeder.push_second(0, &refs).unwrap().unwrap();
        assert_eq!(chunk.second, 1);
        // The other beam has its own sequence.
        let chunk = feeder.push_second(1, &refs).unwrap().unwrap();
        assert_eq!(chunk.beam, 1);
        assert_eq!(chunk.second, 0);
    }

    #[test]
    fn chunks_carry_the_overlap() {
        let plan = plan();
        let mut feeder = BeamFeeder::new(Arc::clone(&plan), 1);
        let first = second(&plan, 1.0);
        let refs: Vec<&[f32]> = first.iter().map(Vec::as_slice).collect();
        feeder.push_second(0, &refs).unwrap();
        let next = second(&plan, 2.0);
        let refs: Vec<&[f32]> = next.iter().map(Vec::as_slice).collect();
        let chunk = feeder.push_second(0, &refs).unwrap().unwrap();
        let overlap = plan.in_samples() - plan.out_samples();
        // The chunk starts with the tail of the previous second.
        assert!(chunk.data.channel(0)[..overlap].iter().all(|&v| v == 1.0));
        assert!(chunk.data.channel(0)[overlap..].iter().all(|&v| v == 2.0));
    }

    #[test]
    fn capture_ring_sizing_matches_the_feeder_overlap() {
        use dedisp_fleet::capture::ring::min_capacity_blocks;
        let plan = plan();
        let overlap = plan.in_samples() - plan.out_samples();
        let capacity = min_capacity_blocks(plan.out_samples(), overlap);
        // The ring rule holds enough whole blocks to cover one full
        // dedispersion window (current second + its overlap context).
        assert!(
            capacity * plan.out_samples() >= plan.in_samples(),
            "a min-sized ring must cover the feeder's window"
        );
        // And it is exactly the warm-up rule plus the current second:
        // the feeder withholds ceil(overlap / s) seconds, the ring
        // holds them plus one.
        assert_eq!(capacity, 1 + overlap.div_ceil(plan.out_samples()));
        // For this sub-second-delay plan that is two blocks: the first
        // push warms the window up, the second streams.
        assert_eq!(capacity, 2);
        let mut feeder = BeamFeeder::new(Arc::clone(&plan), 1);
        let blocks = second(&plan, 1.0);
        let refs: Vec<&[f32]> = blocks.iter().map(Vec::as_slice).collect();
        let mut pushes = 0;
        while feeder.push_second(0, &refs).unwrap().is_none() {
            pushes += 1;
        }
        assert!(
            pushes < capacity,
            "the warm-up ({pushes} withheld seconds + 1) must fit the min-sized ring"
        );
    }

    #[test]
    fn shape_errors_propagate() {
        let plan = plan();
        let mut feeder = BeamFeeder::new(plan, 1);
        let bad = vec![vec![0.0f32; 3]; 8];
        let refs: Vec<&[f32]> = bad.iter().map(Vec::as_slice).collect();
        assert!(feeder.push_second(0, &refs).is_err());
    }
}
