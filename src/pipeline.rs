//! Real-time streaming dedispersion pipelines.
//!
//! Modern survey telescopes cannot buffer their input: data must flow
//! through dedispersion and detection continuously. This module wires
//! the workspace crates into that shape with crossbeam channels:
//!
//! ```text
//! producer(s)  ──chunk──▶  dedisperse worker(s)  ──candidates──▶  collector
//! ```
//!
//! Each [`Chunk`] is one second of channelized data for one beam;
//! workers run the configuration-specialized [`ParallelKernel`] and scan
//! every trial for impulsive candidates. Beams are independent (paper,
//! Section II), so a worker pool scales across them naturally.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::{bounded, Receiver, Sender};
use dedisp_core::{
    Dedisperser, DedispersionPlan, InputBuffer, KernelConfig, OutputBuffer, ParallelKernel,
};
use radioastro::detect::{detect_best_trial, TrialStat};

/// One second of channelized data for one beam.
#[derive(Debug)]
pub struct Chunk {
    /// Which beam this chunk belongs to.
    pub beam: usize,
    /// Sequence number within the beam (seconds since start).
    pub second: u64,
    /// The channelized samples (`channels × in_samples`).
    pub data: InputBuffer,
}

/// A detection candidate emitted by the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Beam of origin.
    pub beam: usize,
    /// Second of origin.
    pub second: u64,
    /// Statistics of the most significant trial.
    pub best: TrialStat,
    /// Dispersion measure of the most significant trial, in pc/cm³.
    pub dm: f64,
}

/// Configuration of a streaming pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Kernel configuration for the dedispersion workers.
    pub kernel: KernelConfig,
    /// Number of dedispersion worker threads.
    pub workers: usize,
    /// Channel capacity (chunks in flight), bounding memory.
    pub queue_depth: usize,
    /// Only emit candidates at least this significant.
    pub snr_threshold: f32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            kernel: KernelConfig::scalar(),
            workers: 2,
            queue_depth: 4,
            snr_threshold: 6.0,
        }
    }
}

/// A running streaming pipeline.
///
/// Feed chunks through [`StreamingPipeline::sender`], drop the sender to
/// signal end-of-stream, then drain candidates from
/// [`StreamingPipeline::candidates`] and [`StreamingPipeline::join`].
pub struct StreamingPipeline {
    input_tx: Option<Sender<Chunk>>,
    candidate_rx: Receiver<Candidate>,
    workers: Vec<thread::JoinHandle<u64>>,
}

impl StreamingPipeline {
    /// Spawns the worker pool for `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `config.workers` or `config.queue_depth` is zero, or if
    /// the kernel configuration is incompatible with the plan.
    pub fn spawn(plan: Arc<DedispersionPlan>, config: PipelineConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.queue_depth > 0, "need a non-zero queue");
        config
            .kernel
            .validate_for(plan.out_samples(), plan.trials())
            .expect("kernel configuration must fit the plan");

        let (input_tx, input_rx) = bounded::<Chunk>(config.queue_depth);
        let (candidate_tx, candidate_rx) = bounded::<Candidate>(config.queue_depth * 4);

        let workers = (0..config.workers)
            .map(|_| {
                let rx = input_rx.clone();
                let tx = candidate_tx.clone();
                let plan = Arc::clone(&plan);
                let kernel = ParallelKernel::new(config.kernel);
                let threshold = config.snr_threshold;
                thread::spawn(move || {
                    let mut output = OutputBuffer::for_plan(&plan);
                    let mut processed = 0u64;
                    while let Ok(chunk) = rx.recv() {
                        output.clear();
                        kernel
                            .dedisperse(&plan, &chunk.data, &mut output)
                            .expect("chunk shape matches plan");
                        let det = detect_best_trial(&output);
                        let best = *det.best();
                        if best.snr >= threshold {
                            let candidate = Candidate {
                                beam: chunk.beam,
                                second: chunk.second,
                                dm: plan.dm_grid().dm(best.trial),
                                best,
                            };
                            // The collector may already have hung up.
                            let _ = tx.send(candidate);
                        }
                        processed += 1;
                    }
                    processed
                })
            })
            .collect();

        Self {
            input_tx: Some(input_tx),
            candidate_rx,
            workers,
        }
    }

    /// The chunk intake. Clone freely for multiple producers; all clones
    /// (and the pipeline's own copy, via [`StreamingPipeline::close`])
    /// must drop before workers finish.
    pub fn sender(&self) -> Sender<Chunk> {
        self.input_tx
            .as_ref()
            .expect("pipeline already closed")
            .clone()
    }

    /// Closes the intake: workers drain the queue and exit.
    pub fn close(&mut self) {
        self.input_tx = None;
    }

    /// The candidate stream.
    pub fn candidates(&self) -> Receiver<Candidate> {
        self.candidate_rx.clone()
    }

    /// Closes the intake (if still open), waits for every worker, and
    /// returns the total number of chunks processed.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panicked.
    pub fn join(mut self) -> u64 {
        self.close();
        self.workers
            .drain(..)
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisp_core::{DmGrid, FrequencyBand};
    use radioastro::{PulseSpec, SignalGenerator};

    fn plan() -> Arc<DedispersionPlan> {
        Arc::new(
            DedispersionPlan::builder()
                .band(FrequencyBand::new(140.0, 0.5, 32).unwrap())
                .dm_grid(DmGrid::new(0.0, 1.0, 8).unwrap())
                .sample_rate(400)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn pipeline_processes_all_chunks() {
        let plan = plan();
        let pipeline = StreamingPipeline::spawn(
            Arc::clone(&plan),
            PipelineConfig {
                kernel: KernelConfig::new(8, 2, 2, 2).unwrap(),
                workers: 3,
                queue_depth: 2,
                snr_threshold: 6.0,
            },
        );
        let tx = pipeline.sender();
        for second in 0..10 {
            let data = SignalGenerator::new(second).generate(&plan);
            tx.send(Chunk {
                beam: 0,
                second,
                data,
            })
            .unwrap();
        }
        drop(tx);
        assert_eq!(pipeline.join(), 10);
    }

    #[test]
    fn pulse_chunk_produces_candidate() {
        let plan = plan();
        let pipeline = StreamingPipeline::spawn(Arc::clone(&plan), PipelineConfig::default());
        let tx = pipeline.sender();
        let candidates = pipeline.candidates();

        // Second 0: noise only. Second 1: noise plus a strong pulse.
        tx.send(Chunk {
            beam: 3,
            second: 0,
            data: SignalGenerator::new(11).generate(&plan),
        })
        .unwrap();
        tx.send(Chunk {
            beam: 3,
            second: 1,
            data: SignalGenerator::new(12)
                .pulse(PulseSpec::impulse(5.0, 100, 4.0))
                .generate(&plan),
        })
        .unwrap();
        drop(tx);
        let processed = pipeline.join();
        assert_eq!(processed, 2);

        let found: Vec<Candidate> = candidates.try_iter().collect();
        assert_eq!(found.len(), 1, "exactly the pulse second fires");
        assert_eq!(found[0].beam, 3);
        assert_eq!(found[0].second, 1);
        assert_eq!(found[0].best.peak_sample, 100);
        assert!((found[0].dm - 5.0).abs() < 1e-9);
        assert!(found[0].best.snr >= 6.0);
    }

    #[test]
    fn multiple_beams_are_tagged() {
        let plan = plan();
        let pipeline = StreamingPipeline::spawn(
            Arc::clone(&plan),
            PipelineConfig {
                snr_threshold: 0.0, // emit everything
                ..PipelineConfig::default()
            },
        );
        let tx = pipeline.sender();
        for beam in 0..4 {
            tx.send(Chunk {
                beam,
                second: 7,
                data: SignalGenerator::new(beam as u64).generate(&plan),
            })
            .unwrap();
        }
        drop(tx);
        let candidates = pipeline.candidates();
        pipeline.join();
        let mut beams: Vec<usize> = candidates.try_iter().map(|c| c.beam).collect();
        beams.sort_unstable();
        assert_eq!(beams, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "must fit the plan")]
    fn oversized_kernel_rejected_at_spawn() {
        let plan = plan();
        let _ = StreamingPipeline::spawn(
            plan,
            PipelineConfig {
                kernel: KernelConfig::new(16, 16, 1, 1).unwrap(), // 16 > 8 trials
                ..PipelineConfig::default()
            },
        );
    }
}
