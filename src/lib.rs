//! # dedisp-repro — workspace facade and end-to-end pipelines
//!
//! Reproduction of *Sclocco et al., "Auto-Tuning Dedispersion for
//! Many-Core Accelerators" (IPDPS 2014)*. This crate re-exports the
//! workspace libraries and adds the one piece the paper assumes around
//! the kernel: a real-time *pipeline* ("dedispersion is always used as
//! part of a larger pipeline", Section IV) that streams channelized
//! seconds of data through dedispersion into detection, for one or many
//! beams.
//!
//! See the `examples/` directory for runnable entry points and the
//! `experiments` crate for the binaries regenerating every table and
//! figure of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use autotune;
pub use cpu_baseline;
pub use dedisp_core;
pub use dedisp_fleet;
pub use manycore_sim;
pub use radioastro;

pub mod feeder;
pub mod pipeline;
