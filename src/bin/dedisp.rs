//! `dedisp` — command-line driver for the dedispersion workspace.
//!
//! ```text
//! dedisp info      --setup apertif|lofar [--rate N] [--trials N]
//! dedisp generate  --setup apertif|lofar --out FILE [--rate N] [--seed N]
//!                  [--pulse DM:SAMPLE:AMP]...
//! dedisp search    --setup apertif|lofar --in FILE [--trials N]
//!                  [--threshold SNR]
//! dedisp tune      --setup apertif|lofar [--trials N] [--device NAME]
//! dedisp plan-dms  --setup apertif|lofar --max-dm DM [--width SECONDS]
//! ```
//!
//! Observations are stored in the workspace filterbank format
//! (`radioastro::Filterbank`).

use std::collections::HashMap;
use std::process::ExitCode;

use dedisp_repro::autotune::{ConfigSpace, SimExecutor, Tuner};
use dedisp_repro::dedisp_core::{Dedisperser, KernelConfig, OutputBuffer, ParallelKernel};
use dedisp_repro::manycore_sim::{all_devices, CostModel, Workload};
use dedisp_repro::radioastro::{
    detect_best_trial, DmPlanner, Filterbank, ObservationalSetup, PulseSpec, SignalGenerator,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  dedisp info      --setup apertif|lofar [--rate N] [--trials N]
  dedisp generate  --setup apertif|lofar --out FILE [--rate N] [--seed N] [--trials N] [--pulse DM:SAMPLE:AMP]...
  dedisp search    --setup apertif|lofar --in FILE [--trials N] [--threshold SNR]
  dedisp tune      --setup apertif|lofar [--trials N] [--device NAME]
  dedisp plan-dms  --setup apertif|lofar --max-dm DM [--width SECONDS]";

/// Parsed flags: `--key value` pairs plus repeatable `--pulse` specs.
struct Flags {
    values: HashMap<String, String>,
    pulses: Vec<PulseSpec>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut values = HashMap::new();
    let mut pulses = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        if key == "pulse" {
            pulses.push(parse_pulse(value)?);
        } else {
            values.insert(key.to_string(), value.clone());
        }
        i += 2;
    }
    Ok(Flags { values, pulses })
}

fn parse_pulse(spec: &str) -> Result<PulseSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != 3 {
        return Err(format!("--pulse expects DM:SAMPLE:AMP, got `{spec}`"));
    }
    let dm: f64 = parts[0]
        .parse()
        .map_err(|_| format!("bad pulse DM `{}`", parts[0]))?;
    let sample: usize = parts[1]
        .parse()
        .map_err(|_| format!("bad pulse sample `{}`", parts[1]))?;
    let amplitude: f32 = parts[2]
        .parse()
        .map_err(|_| format!("bad pulse amplitude `{}`", parts[2]))?;
    Ok(PulseSpec::impulse(dm, sample, amplitude))
}

impl Flags {
    fn setup(&self) -> Result<ObservationalSetup, String> {
        let name = self.values.get("setup").ok_or("missing required --setup")?;
        let mut setup = match name.to_lowercase().as_str() {
            "apertif" => ObservationalSetup::apertif(),
            "lofar" => ObservationalSetup::lofar(),
            other => return Err(format!("unknown setup `{other}` (apertif|lofar)")),
        };
        if let Some(rate) = self.values.get("rate") {
            let rate: u32 = rate.parse().map_err(|_| format!("bad --rate `{rate}`"))?;
            setup = setup.scaled(rate);
        }
        Ok(setup)
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} `{v}`")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad --{key} `{v}`")),
        }
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required --{key}"))
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    let flags = parse_flags(rest)?;
    match command.as_str() {
        "info" => cmd_info(&flags),
        "generate" => cmd_generate(&flags),
        "search" => cmd_search(&flags),
        "tune" => cmd_tune(&flags),
        "plan-dms" => cmd_plan_dms(&flags),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn cmd_info(flags: &Flags) -> Result<(), String> {
    let setup = flags.setup()?;
    let trials = flags.usize_or("trials", 64)?;
    let plan = setup.plan(trials).map_err(|e| e.to_string())?;
    println!("setup        {}", setup.name);
    println!(
        "band         {:.2}-{:.2} MHz in {} channels of {:.4} MHz",
        setup.band.low_mhz(),
        setup.band.high_mhz(),
        setup.band.channels(),
        setup.band.channel_width_mhz()
    );
    println!("time         {} samples/s", setup.sample_rate);
    println!(
        "trials       {} (DM {:.2}..{:.2} step {:.2} pc/cm3)",
        trials,
        plan.dm_grid().first(),
        plan.dm_grid().max_dm(),
        plan.dm_grid().step()
    );
    println!(
        "buffers      input {}x{} ({:.1} MiB), output {}x{} ({:.1} MiB)",
        plan.channels(),
        plan.in_samples(),
        plan.input_bytes() as f64 / (1 << 20) as f64,
        plan.trials(),
        plan.out_samples(),
        plan.output_bytes() as f64 / (1 << 20) as f64
    );
    println!("max delay    {} samples", plan.delays().max_delay());
    println!("work         {:.1} MFLOP per DM", setup.mflop_per_dm());
    println!(
        "real-time    needs {:.2} GFLOP/s sustained",
        plan.realtime_gflops()
    );
    Ok(())
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let setup = flags.setup()?;
    let trials = flags.usize_or("trials", 64)?;
    let seed = flags.usize_or("seed", 1)? as u64;
    let out_path = flags.required("out")?;
    let plan = setup.plan(trials).map_err(|e| e.to_string())?;
    let mut generator = SignalGenerator::new(seed).noise_sigma(1.0);
    for pulse in &flags.pulses {
        generator = generator.pulse(*pulse);
    }
    let data = generator.generate(&plan);
    let fb = Filterbank::new(setup.band, setup.sample_rate, data).map_err(|e| e.to_string())?;
    let bytes = fb.to_bytes();
    std::fs::write(out_path, &bytes).map_err(|e| format!("writing {out_path}: {e}"))?;
    println!(
        "wrote {out_path}: {} channels x {} samples, {} pulse(s), {:.1} MiB",
        fb.band.channels(),
        fb.data.samples(),
        flags.pulses.len(),
        bytes.len() as f64 / (1 << 20) as f64
    );
    Ok(())
}

fn cmd_search(flags: &Flags) -> Result<(), String> {
    let setup = flags.setup()?;
    let trials = flags.usize_or("trials", 64)?;
    let threshold = flags.f64_or("threshold", 6.0)? as f32;
    let in_path = flags.required("in")?;
    let bytes = std::fs::read(in_path).map_err(|e| format!("reading {in_path}: {e}"))?;
    let fb = Filterbank::from_bytes(bytes.into()).map_err(|e| e.to_string())?;
    let plan = setup.plan(trials).map_err(|e| e.to_string())?;
    fb.data.check_plan(&plan).map_err(|e| {
        format!("{e}; does --setup/--rate/--trials match how the file was generated?")
    })?;

    let mut output = OutputBuffer::for_plan(&plan);
    ParallelKernel::new(KernelConfig::new(25, 2, 4, 2).map_err(|e| e.to_string())?)
        .dedisperse(&plan, &fb.data, &mut output)
        .map_err(|e| e.to_string())?;
    let det = detect_best_trial(&output);
    let best = det.best();
    println!(
        "best trial: DM {:.2} pc/cm3, sample {}, S/N {:.2}",
        plan.dm_grid().dm(best.trial),
        best.peak_sample,
        best.snr
    );
    let mut above = 0;
    for stat in &det.trials {
        if stat.snr >= threshold {
            above += 1;
            println!(
                "  candidate: DM {:>8.2}  sample {:>7}  S/N {:>6.2}",
                plan.dm_grid().dm(stat.trial),
                stat.peak_sample,
                stat.snr
            );
        }
    }
    if above == 0 {
        println!("no candidates above S/N {threshold}");
    }
    Ok(())
}

fn cmd_tune(flags: &Flags) -> Result<(), String> {
    let setup = flags.setup()?;
    let trials = flags.usize_or("trials", 1024)?;
    let filter = flags.values.get("device").map(|s| s.to_lowercase());
    let grid = setup.dm_grid(trials).map_err(|e| e.to_string())?;
    let workload = Workload::analytic(setup.name.clone(), &setup.band, &grid, setup.sample_rate)
        .map_err(|e| e.to_string())?;
    let space = ConfigSpace::paper();
    let mut matched = false;
    for device in all_devices() {
        if let Some(f) = &filter {
            if !device.name.to_lowercase().contains(f) {
                continue;
            }
        }
        matched = true;
        let model = CostModel::new(device);
        let result = Tuner.tune(&SimExecutor::new(&model, &workload, &space));
        println!(
            "{:22} {:>22}  {:>8.1} GFLOP/s  (space {}, SNR {:.2})",
            model.device().name,
            result.best_config().to_string(),
            result.best_gflops(),
            result.samples.len(),
            result.stats().snr_of_max()
        );
    }
    if !matched {
        return Err(format!(
            "no device matches `{}`",
            filter.unwrap_or_default()
        ));
    }
    Ok(())
}

fn cmd_plan_dms(flags: &Flags) -> Result<(), String> {
    let setup = flags.setup()?;
    let max_dm = flags.f64_or("max-dm", 0.0)?;
    if max_dm <= 0.0 {
        return Err("missing or invalid --max-dm".to_string());
    }
    let width = flags.f64_or("width", 1e-3)?;
    let planner = DmPlanner::new(max_dm, width);
    let plan = planner.plan(&setup).map_err(|e| e.to_string())?;
    println!(
        "{} trial DMs to DM {:.1} (pulse width {:.3} ms):",
        plan.total_trials(),
        plan.max_dm(),
        width * 1e3
    );
    for seg in &plan.segments {
        println!(
            "  {:>6} trials  DM {:>9.3}..{:>9.3}  step {:>8.4}  smear {:>7.3} ms",
            seg.grid.count(),
            seg.grid.first(),
            seg.grid.max_dm(),
            seg.grid.step(),
            seg.smear_at_end_s * 1e3
        );
    }
    Ok(())
}
