//! The paper's headline claims, asserted against the regenerated
//! evaluation at a representative instance (1,024 trial DMs) with the
//! full paper configuration space.

use dedisp_repro::autotune::{best_fixed_config, ConfigSpace, SimExecutor, Tuner, TuningResult};
use dedisp_repro::cpu_baseline::tuned_cpu_gflops;
use dedisp_repro::dedisp_core::{ArithmeticIntensity, Roofline};
use dedisp_repro::manycore_sim::{all_devices, BoundKind, CostModel, Workload};
use dedisp_repro::radioastro::{ObservationalSetup, RealtimeCheck};

fn tune(
    device_index: usize,
    setup: &ObservationalSetup,
    trials: usize,
    zero_dm: bool,
) -> TuningResult {
    let grid = setup.dm_grid(trials).unwrap();
    let mut w =
        Workload::analytic(setup.name.clone(), &setup.band, &grid, setup.sample_rate).unwrap();
    if zero_dm {
        w = w.zero_dm();
    }
    let model = CostModel::new(all_devices().swap_remove(device_index));
    Tuner.tune(&SimExecutor::new(&model, &w, &ConfigSpace::paper()))
}

const HD7970: usize = 0;
const PHI: usize = 1;
const GTX680: usize = 2;
const K20: usize = 3;
const TITAN: usize = 4;

#[test]
fn claim_dedispersion_is_memory_bound_in_realistic_scenarios() {
    // Section III-A / V-C: without reuse AI < 1/4 and every Table I
    // device's ridge point is far above it.
    let setup = ObservationalSetup::lofar();
    let plan = setup.scaled(2_000).plan(64).unwrap();
    let ai = ArithmeticIntensity::for_execution(
        &plan,
        &dedisp_repro::dedisp_core::KernelConfig::scalar(),
    );
    assert!(ai.flop_per_byte() < 0.25);
    for dev in all_devices() {
        let roofline = Roofline::new(dev.peak_gflops, dev.peak_bandwidth_gbs);
        assert!(roofline.is_memory_bound(ai.flop_per_byte()), "{}", dev.name);
    }
    // And the tuned LOFAR optimum itself executes memory-bound.
    let grid = setup.dm_grid(1024).unwrap();
    let w = Workload::analytic("LOFAR", &setup.band, &grid, setup.sample_rate).unwrap();
    let model = CostModel::new(all_devices().swap_remove(HD7970));
    let tuned = Tuner.tune(&SimExecutor::new(&model, &w, &ConfigSpace::paper()));
    let estimate = model.evaluate(&w, &tuned.best_config()).unwrap();
    assert_eq!(estimate.bound, BoundKind::Memory);
}

#[test]
fn claim_hd7970_fastest_on_apertif_phi_slowest() {
    // Section V-B: "the HD7970 achieves the highest performance, the
    // Xeon Phi the lowest, and the three NVIDIA GPUs ... in the middle.
    // On average the HD7970 is 2 times faster than the NVIDIA GPUs, and
    // 7.5 times faster than the Xeon Phi."
    let setup = ObservationalSetup::apertif();
    let hd = tune(HD7970, &setup, 1024, false).best_gflops();
    let phi = tune(PHI, &setup, 1024, false).best_gflops();
    let nvidia = [GTX680, K20, TITAN].map(|d| tune(d, &setup, 1024, false).best_gflops());
    for g in nvidia {
        assert!(hd > g, "HD {hd} must beat NVIDIA {g}");
        assert!(g > phi, "NVIDIA {g} must beat Phi {phi}");
    }
    let nv_mean = nvidia.iter().sum::<f64>() / 3.0;
    let vs_nvidia = hd / nv_mean;
    let vs_phi = hd / phi;
    assert!((1.5..3.0).contains(&vs_nvidia), "HD/NVIDIA {vs_nvidia}");
    assert!((5.0..12.0).contains(&vs_phi), "HD/Phi {vs_phi}");
}

#[test]
fn claim_lofar_narrows_the_field_and_bandwidth_decides() {
    // Section V-B: on LOFAR "the HD7970 and the GTX Titan achieving the
    // higher performance ... the two GPUs with higher bandwidth", and
    // the GPUs are "on average, 2.5 times faster than the Xeon Phi".
    let setup = ObservationalSetup::lofar();
    let hd = tune(HD7970, &setup, 1024, false).best_gflops();
    let phi = tune(PHI, &setup, 1024, false).best_gflops();
    let g680 = tune(GTX680, &setup, 1024, false).best_gflops();
    let k20 = tune(K20, &setup, 1024, false).best_gflops();
    let titan = tune(TITAN, &setup, 1024, false).best_gflops();
    // Top two are the high-bandwidth pair.
    let mut ranked = [("hd", hd), ("680", g680), ("k20", k20), ("titan", titan)];
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top2: Vec<&str> = ranked[..2].iter().map(|r| r.0).collect();
    assert!(
        top2.contains(&"hd") && top2.contains(&"titan"),
        "{ranked:?}"
    );
    let gpu_mean = (hd + g680 + k20 + titan) / 4.0;
    let ratio = gpu_mean / phi;
    assert!((2.0..4.5).contains(&ratio), "GPU/Phi {ratio}");
}

#[test]
fn claim_real_time_feasible_for_gpus_not_phi() {
    // Figures 6-7: every GPU satisfies the real-time constraint at the
    // largest instances; the Xeon Phi is "the only exception" (Apertif).
    let setup = ObservationalSetup::apertif();
    let check = RealtimeCheck::for_setup(&setup, 4096);
    for dev in [HD7970, GTX680, K20, TITAN] {
        let g = tune(dev, &setup, 4096, false).best_gflops();
        assert!(check.satisfied_by(g), "device {dev}: {g} GFLOP/s");
    }
    let phi = tune(PHI, &setup, 4096, false).best_gflops();
    assert!(
        !check.satisfied_by(phi),
        "Phi {phi} should miss {}",
        check.required_gflops
    );
}

#[test]
fn claim_zero_dm_lifts_lofar_to_apertif_levels() {
    // Section V-C: Apertif barely changes under 0-DM; LOFAR "results are
    // higher and in line with the measurements of the Apertif setup".
    let apertif = ObservationalSetup::apertif();
    let lofar = ObservationalSetup::lofar();
    for dev in [HD7970, TITAN] {
        let ap_real = tune(dev, &apertif, 1024, false).best_gflops();
        let ap_zero = tune(dev, &apertif, 1024, true).best_gflops();
        let lo_real = tune(dev, &lofar, 1024, false).best_gflops();
        let lo_zero = tune(dev, &lofar, 1024, true).best_gflops();
        assert!(
            (ap_zero / ap_real - 1.0).abs() < 0.15,
            "device {dev}: Apertif 0-DM ratio {}",
            ap_zero / ap_real
        );
        assert!(
            lo_zero > 1.8 * lo_real,
            "device {dev}: LOFAR gain {}",
            lo_zero / lo_real
        );
        assert!(
            (lo_zero / ap_zero - 1.0).abs() < 0.25,
            "device {dev}: 0-DM LOFAR {lo_zero} vs Apertif {ap_zero}"
        );
    }
}

#[test]
fn claim_tuned_beats_fixed_configurations() {
    // Section V-D: ~3x over fixed on Apertif GPUs; ~1.5x for NVIDIA on
    // LOFAR; HD7970 and Phi near 1x on LOFAR.
    let apertif = ObservationalSetup::apertif();
    let lofar = ObservationalSetup::lofar();
    let instances = [2usize, 16, 128, 1024];

    let sweep = |dev: usize, setup: &ObservationalSetup| -> Vec<TuningResult> {
        instances
            .iter()
            .map(|&t| tune(dev, setup, t, false))
            .collect()
    };

    let hd_ap = best_fixed_config(&sweep(HD7970, &apertif));
    assert!(
        hd_ap.speedups()[3] > 2.0,
        "Apertif HD speedup {}",
        hd_ap.speedups()[3]
    );

    let k20_lo = best_fixed_config(&sweep(K20, &lofar));
    let s = k20_lo.speedups()[3];
    assert!((1.2..2.5).contains(&s), "LOFAR K20 speedup {s}");

    let phi_lo = best_fixed_config(&sweep(PHI, &lofar));
    let s = phi_lo.speedups()[3];
    assert!(s < 1.3, "LOFAR Phi speedup {s} should be near 1");

    // Tuned never loses to fixed anywhere.
    for cmp in [&hd_ap, &k20_lo, &phi_lo] {
        for sp in cmp.speedups() {
            assert!(sp >= 1.0 - 1e-12);
        }
    }
}

#[test]
fn claim_order_of_magnitude_over_cpu() {
    // Section VII: the tuned algorithm "is an order of magnitude faster
    // than an optimized CPU implementation".
    let setup = ObservationalSetup::apertif();
    let grid = setup.dm_grid(1024).unwrap();
    let w = Workload::analytic("Apertif", &setup.band, &grid, setup.sample_rate).unwrap();
    let cpu = tuned_cpu_gflops(&w);
    let hd = tune(HD7970, &setup, 1024, false).best_gflops();
    let speedup = hd / cpu;
    assert!((20.0..90.0).contains(&speedup), "speedup {speedup}");
}

#[test]
fn claim_snr_of_optimum_in_paper_band() {
    // Section VII: "the optimal configuration ... lies far from the
    // average, having an average signal-to-noise ratio of 2-4".
    let mut snrs = Vec::new();
    for setup in [ObservationalSetup::apertif(), ObservationalSetup::lofar()] {
        for dev in [HD7970, PHI, GTX680, K20, TITAN] {
            snrs.push(tune(dev, &setup, 1024, false).stats().snr_of_max());
        }
    }
    let mean = snrs.iter().sum::<f64>() / snrs.len() as f64;
    assert!((1.5..4.5).contains(&mean), "mean SNR {mean}");
    for s in snrs {
        assert!(s > 1.0, "SNR {s}");
    }
}
