//! Cross-crate kernel equivalence: the CPU baseline, the tiled kernel,
//! the parallel kernel, and the sequential reference all compute the
//! identical transform.

use dedisp_repro::cpu_baseline::OpenMpAvxKernel;
use dedisp_repro::dedisp_core::prelude::*;
use dedisp_repro::radioastro::{ObservationalSetup, SignalGenerator};

fn all_kernels(config: KernelConfig) -> Vec<Box<dyn Dedisperser>> {
    vec![
        Box::new(NaiveKernel),
        Box::new(TiledKernel::new(config)),
        Box::new(ParallelKernel::new(config)),
        Box::new(OpenMpAvxKernel::default()),
        Box::new(OpenMpAvxKernel::with_block(64)),
    ]
}

#[test]
fn five_implementations_agree_bitwise() {
    for setup in [
        ObservationalSetup::apertif().scaled(400),
        ObservationalSetup::lofar().scaled(400),
    ] {
        let plan = setup.plan(12).expect("valid plan");
        let input = SignalGenerator::new(77).generate(&plan);
        let config = KernelConfig::new(8, 3, 5, 2).unwrap();

        let mut outputs = Vec::new();
        for kernel in all_kernels(config) {
            let mut out = OutputBuffer::for_plan(&plan);
            kernel.dedisperse(&plan, &input, &mut out).unwrap();
            outputs.push((kernel.name(), out));
        }
        let (ref_name, reference) = &outputs[0];
        for (name, out) in &outputs[1..] {
            assert_eq!(
                out.max_abs_diff(reference),
                0.0,
                "{name} differs from {ref_name} on {}",
                setup.name
            );
        }
    }
}

#[test]
fn repeated_invocations_are_idempotent() {
    let setup = ObservationalSetup::lofar().scaled(300);
    let plan = setup.plan(6).expect("valid plan");
    let input = SignalGenerator::new(7).generate(&plan);
    let kernel = ParallelKernel::new(KernelConfig::new(10, 2, 3, 3).unwrap());
    let mut out = OutputBuffer::for_plan(&plan);
    kernel.dedisperse(&plan, &input, &mut out).unwrap();
    let first = out.clone();
    // Reusing the same output buffer must overwrite, not accumulate.
    kernel.dedisperse(&plan, &input, &mut out).unwrap();
    assert_eq!(out.max_abs_diff(&first), 0.0);
}

#[test]
fn generated_source_tracks_host_kernel_structure() {
    // The generated OpenCL and the host kernels are driven by the same
    // KernelConfig: spot-check that the source embeds the plan and tile
    // the host actually used.
    let setup = ObservationalSetup::apertif().scaled(500);
    let plan = setup.plan(16).expect("valid plan");
    let config = KernelConfig::new(25, 4, 2, 2).unwrap();
    let src = dedisp_repro::dedisp_core::codegen::generate_opencl(&plan, &config).unwrap();
    assert!(src.contains(&format!("#define CHANNELS {}u", plan.channels())));
    assert!(src.contains(&format!("#define OUT_SAMPLES {}u", plan.out_samples())));
    assert!(src.contains(&format!("#define TILE_TIME {}u", config.tile_time())));
    assert!(src.contains(&format!("#define TILE_DM {}u", config.tile_dm())));
    assert!(src.contains("reqd_work_group_size(25, 4, 1)"));
}
