//! Cross-crate edge cases: minimal problems, degenerate configurations,
//! and error-path behavior a downstream user will eventually hit.

use dedisp_repro::autotune::{ConfigSpace, SimExecutor, Tuner};
use dedisp_repro::dedisp_core::prelude::*;
use dedisp_repro::manycore_sim::{all_devices, CostModel, Workload};
use dedisp_repro::radioastro::{clip_samples, mask_channels, ObservationalSetup, SignalGenerator};

#[test]
fn one_by_one_problem_works_end_to_end() {
    // A single channel, a single trial, a handful of samples.
    let plan = DedispersionPlan::builder()
        .band(FrequencyBand::new(1000.0, 1.0, 1).unwrap())
        .dm_grid(DmGrid::new(0.0, 0.25, 1).unwrap())
        .sample_rate(8)
        .build()
        .unwrap();
    let mut input = InputBuffer::for_plan(&plan);
    input
        .channel_mut(0)
        .copy_from_slice(&[1., 2., 3., 4., 5., 6., 7., 8.]);
    let out = dedisp_repro::dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
    // One channel, zero delay: the output is the input's first second.
    assert_eq!(out.series(0), input.channel(0));

    // Every kernel agrees even here.
    let config = KernelConfig::scalar();
    for kernel in [
        Box::new(TiledKernel::new(config)) as Box<dyn Dedisperser>,
        Box::new(ParallelKernel::new(config)),
    ] {
        let mut o = OutputBuffer::for_plan(&plan);
        kernel.dedisperse(&plan, &input, &mut o).unwrap();
        assert_eq!(o.max_abs_diff(&out), 0.0);
    }
}

#[test]
fn single_trial_instance_tunes_on_every_device() {
    // d = 1: the DM dimension offers nothing; the tuner must still
    // produce a meaningful optimum on all five devices.
    let setup = ObservationalSetup::apertif();
    let grid = setup.dm_grid(1).unwrap();
    let w = Workload::analytic("Apertif", &setup.band, &grid, setup.sample_rate).unwrap();
    let space = ConfigSpace::paper();
    for dev in all_devices() {
        let model = CostModel::new(dev);
        let r = Tuner.tune(&SimExecutor::new(&model, &w, &space));
        assert_eq!(r.best_config().tile_dm(), 1, "{}", r.label);
        assert!(r.best_gflops() > 0.0);
    }
}

#[test]
fn highest_trial_pulse_sits_at_buffer_edge() {
    // A pulse whose delayed tail lands on the very last input sample:
    // indexing must stay in bounds and the pulse must be recovered.
    let setup = ObservationalSetup::lofar().scaled(500);
    let plan = setup.plan(8).unwrap();
    let last_trial = plan.trials() - 1;
    let dm = plan.dm_grid().dm(last_trial);
    let last_sample = plan.out_samples() - 1;
    let mut input = InputBuffer::for_plan(&plan);
    for ch in 0..plan.channels() {
        let shift = plan.delays().delay(last_trial, ch);
        input.channel_mut(ch)[last_sample + shift] = 1.0;
    }
    let out = dedisp_repro::dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
    assert!(
        (out.series(last_trial)[last_sample] - plan.channels() as f32).abs() < 1e-3,
        "got {}",
        out.series(last_trial)[last_sample]
    );
    let _ = dm; // documented intent: this is the max-DM trial
}

#[test]
fn rfi_cleaning_is_idempotent() {
    let setup = ObservationalSetup::lofar().scaled(400);
    let plan = setup.plan(4).unwrap();
    let mut buf = SignalGenerator::new(21).generate(&plan);
    for v in buf.channel_mut(5) {
        *v += 9.0;
    }
    for ch in 0..plan.channels() {
        buf.channel_mut(ch)[37] += 7.0;
    }
    let r1 = mask_channels(&mut buf, 5.0);
    let r2 = clip_samples(&mut buf, 6.0);
    assert!(!r1.is_clean() || !r2.is_clean());
    // A second pass finds nothing new.
    let r3 = mask_channels(&mut buf, 5.0);
    let r4 = clip_samples(&mut buf, 6.0);
    assert!(r3.is_clean(), "{:?}", r3.masked_channels);
    assert!(r4.is_clean(), "{:?}", r4.clipped_samples);
}

#[test]
fn subband_and_exact_agree_when_smear_is_zero() {
    // A zero-DM plan has identical delays everywhere: the two-stage
    // scheme is exact by construction for any configuration.
    let setup = ObservationalSetup::lofar().scaled(400);
    let plan = setup.plan_zero_dm(8).unwrap();
    let input = SignalGenerator::new(3).generate(&plan);
    let exact = dedisp_repro::dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
    for (subbands, stride) in [(4usize, 2usize), (8, 4), (16, 8)] {
        let kernel = SubbandKernel::new(SubbandConfig::new(subbands, stride).unwrap());
        assert_eq!(kernel.max_smear_samples(&plan), 0);
        let mut out = OutputBuffer::for_plan(&plan);
        kernel.dedisperse(&plan, &input, &mut out).unwrap();
        assert!(
            out.max_abs_diff(&exact) < 1e-3,
            "subbands {subbands} stride {stride}: {}",
            out.max_abs_diff(&exact)
        );
    }
}

#[test]
fn error_messages_name_the_problem() {
    let plan = ObservationalSetup::apertif().scaled(200).plan(4).unwrap();
    let input = InputBuffer::zeroed(3, 3);
    let mut out = OutputBuffer::for_plan(&plan);
    let err = NaiveKernel
        .dedisperse(&plan, &input, &mut out)
        .unwrap_err()
        .to_string();
    assert!(err.contains("shape mismatch"), "{err}");

    let cfg_err = KernelConfig::new(0, 1, 1, 1).unwrap_err().to_string();
    assert!(cfg_err.contains("wi_time"), "{cfg_err}");

    let band_err = FrequencyBand::new(-1.0, 1.0, 4).unwrap_err().to_string();
    assert!(band_err.contains("low_mhz"), "{band_err}");
}

#[test]
fn generated_kernels_cover_full_paper_space_shapes() {
    // Codegen must handle every meaningful configuration the tuner can
    // select for the real observational setups.
    let setup = ObservationalSetup::apertif();
    let plan = setup.scaled(2_000).plan(64).unwrap();
    let space = ConfigSpace::reduced();
    for config in space.raw_configs() {
        if config
            .validate_for(plan.out_samples(), plan.trials())
            .is_ok()
        {
            let src = dedisp_repro::dedisp_core::codegen::generate_opencl(&plan, &config)
                .expect("codegen succeeds for any valid config");
            assert!(src.contains("__kernel"));
        }
    }
}
