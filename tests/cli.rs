//! End-to-end tests of the `dedisp` command-line binary, exercised as a
//! real subprocess.

use std::process::{Command, Output};

fn dedisp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dedisp"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn info_prints_setup_summary() {
    let out = dedisp(&[
        "info", "--setup", "lofar", "--rate", "1000", "--trials", "32",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("LOFAR"));
    assert!(text.contains("32 channels"));
    assert!(text.contains("real-time"));
}

#[test]
fn generate_then_search_recovers_pulse() {
    let dir = std::env::temp_dir().join(format!("dedisp-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("obs.fb");
    let file = file.to_str().unwrap();

    let out = dedisp(&[
        "generate",
        "--setup",
        "lofar",
        "--rate",
        "1000",
        "--trials",
        "24",
        "--seed",
        "5",
        "--pulse",
        "4.0:300:4.0",
        "--out",
        file,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("1 pulse(s)"));

    let out = dedisp(&[
        "search", "--setup", "lofar", "--rate", "1000", "--trials", "24", "--in", file,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("DM 4.00"), "{text}");
    assert!(text.contains("sample 300"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_rejects_mismatched_plan() {
    let dir = std::env::temp_dir().join(format!("dedisp-cli-mm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("obs.fb");
    let file = file.to_str().unwrap();

    let out = dedisp(&[
        "generate", "--setup", "lofar", "--rate", "1000", "--trials", "8", "--out", file,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    // Searching with a different trial count changes the expected input
    // length; the CLI must explain rather than crash.
    let out = dedisp(&[
        "search", "--setup", "lofar", "--rate", "1000", "--trials", "64", "--in", file,
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("match how the file was generated"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tune_filters_by_device() {
    let out = dedisp(&[
        "tune", "--setup", "lofar", "--trials", "64", "--device", "hd7970",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("AMD HD7970"));
    assert!(!text.contains("NVIDIA"));
    assert!(text.contains("GFLOP/s"));
}

#[test]
fn plan_dms_prints_segments() {
    let out = dedisp(&[
        "plan-dms", "--setup", "apertif", "--max-dm", "500", "--width", "0.001",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("trial DMs to DM"), "{text}");
    assert!(text.contains("trials"), "{text}");
    assert!(text.contains("step"), "{text}");
}

#[test]
fn bad_usage_reports_errors() {
    let out = dedisp(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
    assert!(stderr(&out).contains("usage:"));

    let out = dedisp(&["info"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("--setup"));

    let out = dedisp(&["info", "--setup", "vla"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown setup"));

    let out = dedisp(&[
        "generate", "--setup", "lofar", "--pulse", "nope", "--out", "/tmp/x",
    ]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("DM:SAMPLE:AMP"));
}
