//! End-to-end integration: tune on the device model, execute the tuned
//! configuration with the host kernels on synthetic telescope data, and
//! recover injected astrophysics.

use std::sync::Arc;

use dedisp_repro::autotune::{ConfigSpace, SimExecutor, Tuner};
use dedisp_repro::dedisp_core::prelude::*;
use dedisp_repro::manycore_sim::{amd_hd7970, CostModel, Workload};
use dedisp_repro::pipeline::{Chunk, PipelineConfig, StreamingPipeline};
use dedisp_repro::radioastro::{
    detect_best_trial, Filterbank, ObservationalSetup, PulseSpec, SignalGenerator,
};

/// A fast LOFAR-shaped setup: real band, scaled time resolution.
fn mini_lofar() -> ObservationalSetup {
    ObservationalSetup::lofar().scaled(1_000)
}

#[test]
fn tune_then_execute_then_detect() {
    let setup = mini_lofar();
    let trials = 32;
    let plan = setup.plan(trials).expect("valid plan");

    // 1. Tune against the HD7970 model for this setup and instance.
    let grid = setup.dm_grid(trials).unwrap();
    let workload =
        Workload::analytic(setup.name.clone(), &setup.band, &grid, setup.sample_rate).unwrap();
    let model = CostModel::new(amd_hd7970());
    let space = ConfigSpace::reduced();
    let tuned = Tuner.tune(&SimExecutor::new(&model, &workload, &space));
    let mut config = tuned.best_config();

    // The tuned tile targets one second at full rate; shrink it until it
    // also fits the scaled plan used for host execution.
    while config.tile_time() as usize > plan.out_samples() {
        config = KernelConfig::new(
            (config.wi_time() / 2).max(1),
            config.wi_dm(),
            (config.el_time() / 2).max(1),
            config.el_dm(),
        )
        .unwrap();
    }
    config
        .validate_for(plan.out_samples(), plan.trials())
        .expect("shrunken config fits");

    // 2. Execute the tuned configuration on synthetic data with a pulse.
    let true_dm = 5.5;
    let input = SignalGenerator::new(99)
        .noise_sigma(1.0)
        .pulse(PulseSpec::impulse(true_dm, 400, 3.0))
        .generate(&plan);
    let mut out_tiled = OutputBuffer::for_plan(&plan);
    TiledKernel::new(config)
        .dedisperse(&plan, &input, &mut out_tiled)
        .unwrap();

    // 3. The tuned kernel agrees with the reference bit-for-bit.
    let reference = dedisp_repro::dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
    assert_eq!(out_tiled.max_abs_diff(&reference), 0.0);

    // 4. And the pulse is recovered at the injected DM.
    let det = detect_best_trial(&out_tiled);
    let found = plan.dm_grid().dm(det.best_trial);
    assert!(
        (found - true_dm).abs() <= plan.dm_grid().step(),
        "found {found}"
    );
    assert_eq!(det.best().peak_sample, 400);
    assert!(det.best().snr > 6.0);
}

#[test]
fn filterbank_feeds_the_pipeline() {
    // Persist an observation as a filterbank blob, re-load it, and push
    // it through the streaming pipeline.
    let setup = mini_lofar();
    let plan = Arc::new(setup.plan(16).expect("valid plan"));
    let data = SignalGenerator::new(5)
        .noise_sigma(1.0)
        .pulse(PulseSpec::impulse(2.0, 123, 4.0))
        .generate(&plan);

    let blob = Filterbank::new(setup.band, setup.sample_rate, data)
        .unwrap()
        .to_bytes();
    let restored = Filterbank::from_bytes(blob).unwrap();
    assert_eq!(restored.band.channels(), plan.channels());

    let pipeline = StreamingPipeline::spawn(Arc::clone(&plan), PipelineConfig::default());
    let tx = pipeline.sender();
    let candidates = pipeline.candidates();
    tx.send(Chunk {
        beam: 0,
        second: 0,
        data: restored.data,
    })
    .unwrap();
    drop(tx);
    assert_eq!(pipeline.join(), 1);

    let found: Vec<_> = candidates.try_iter().collect();
    assert_eq!(found.len(), 1);
    assert!((found[0].dm - 2.0).abs() <= plan.dm_grid().step());
    assert_eq!(found[0].best.peak_sample, 123);
}

#[test]
fn both_setups_run_the_same_code_paths() {
    // Apertif and LOFAR differ only in parameters, never in code.
    for setup in [
        ObservationalSetup::apertif().scaled(500),
        ObservationalSetup::lofar().scaled(500),
    ] {
        let plan = setup.plan(8).expect("valid plan");
        let input = SignalGenerator::new(1).generate(&plan);
        let reference = dedisp_repro::dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
        let config = KernelConfig::new(10, 2, 5, 2).unwrap();
        let mut out = OutputBuffer::for_plan(&plan);
        ParallelKernel::new(config)
            .dedisperse(&plan, &input, &mut out)
            .unwrap();
        assert_eq!(out.max_abs_diff(&reference), 0.0, "{}", setup.name);
    }
}

#[test]
fn zero_dm_plan_equalizes_all_trials() {
    // Experiment 3's functional counterpart: with all delays zero every
    // dedispersed series is identical.
    let setup = mini_lofar();
    let plan = setup.plan_zero_dm(8).expect("valid plan");
    let input = SignalGenerator::new(3).generate(&plan);
    let out = dedisp_repro::dedisp_core::kernel::dedisperse(&plan, &input).unwrap();
    let first = out.series(0).to_vec();
    for trial in 1..plan.trials() {
        assert_eq!(out.series(trial), &first[..], "trial {trial}");
    }
}
